//! A live cache daemon: one proxy node served over real sockets.
//!
//! Each daemon runs two background threads — an ICP responder on a UDP
//! socket and a document server on a TCP listener — around the same
//! I/O-free [`ProxyNode`] the simulators use. The client-facing
//! [`CacheDaemon::request`] drives the full protocol over the loopback
//! network: local lookup, UDP ICP fan-out, TCP fetch from the positive
//! repliers in arrival order (with expiration ages piggybacked both
//! ways), origin fallback.
//!
//! # Fault tolerance
//!
//! The responder that answered an ICP query may be dead, slow, or lying
//! by the time the HTTP fetch arrives. The daemon absorbs every peer
//! failure instead of surfacing it to the client:
//!
//! * **Multi-candidate failover** — the ICP wait collects *all* positive
//!   repliers (deduplicated by cache id, ordered by arrival); the fetch
//!   tries them in order with one bounded retry each and falls back to
//!   the origin when the list is exhausted.
//! * **Peer health tracking** — consecutive failures (including ICP
//!   silence) quarantine a peer with exponential backoff, so a dead
//!   sibling stops costing an ICP timeout on every group miss.
//! * **Resilient server loops** — transient socket errors are logged as
//!   [`Event::ServerLoopError`] and the loop keeps serving; only
//!   shutdown exits.
//!
//! Chaos runs are auditable through the event stream (`PeerFault`,
//! `Failover`, `PeerQuarantined`, `ServerLoopError`) and driven by a
//! seeded [`FaultPlan`](crate::FaultPlan) compiled into the server loops.

use crate::clock::SharedClock;
use crate::fault::{DocFault, FaultState, IcpFault};
use crate::origin::{drain_body, fetch_from_origin, write_body};
use crate::wire::{read_frame, write_frame, WireMessage};
use coopcache_core::{CacheConfig, ExpirationWindow, PlacementScheme, PolicyKind};
use coopcache_obs::{
    age_to_ms, scoped_id, Event, FaultOp, Histogram, HistogramSnapshot, JsonWriter, SeriesPoint,
    SeriesRing, ServerLoop, SinkHandle, Span, SpanKind, StatsRegistry, TraceCtx,
    DEFAULT_SERIES_CAPACITY,
};
use coopcache_proxy::{ConcurrentNode, IcpQuery, RequestOutcome};
use coopcache_types::{ByteSize, CacheId, DocId};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Locks a mutex, recovering the data from a poisoned lock — a panicked
/// server thread should degrade the daemon, not wedge it.
fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Maps an I/O error onto the closed label vocabulary the event stream
/// uses (stable across runs, so chaos traces stay deterministic).
fn error_label(e: &io::Error) -> &'static str {
    match e.kind() {
        io::ErrorKind::ConnectionRefused => "refused",
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => "reset",
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => "timeout",
        io::ErrorKind::UnexpectedEof => "eof",
        io::ErrorKind::InvalidData => "proto",
        _ => "io",
    }
}

/// Addresses a daemon needs to reach a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerAddr {
    /// The peer's cache id.
    pub id: CacheId,
    /// Its ICP (UDP) endpoint.
    pub icp: SocketAddr,
    /// Its document (TCP) endpoint.
    pub doc: SocketAddr,
}

/// Timeouts, identity, and failover policy for a daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// This daemon's cache id.
    pub id: CacheId,
    /// Cache capacity.
    pub capacity: ByteSize,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Placement scheme.
    pub scheme: PlacementScheme,
    /// Expiration-age window.
    pub window: ExpirationWindow,
    /// Shard count for the node's cache (power of two). With more than
    /// one shard, requests touching different shards are served
    /// concurrently by the daemon's threads instead of serializing on a
    /// node-wide lock; `1` reproduces the single-store behavior exactly.
    pub shards: usize,
    /// How long to wait for ICP replies before declaring a group miss.
    pub icp_timeout: Duration,
    /// Per-connection I/O timeout.
    pub io_timeout: Duration,
    /// Extra fetch attempts per failed candidate (bounded retry).
    pub peer_retries: u32,
    /// Consecutive failures before a peer is quarantined (0 disables
    /// quarantine entirely).
    pub quarantine_after: u32,
    /// First quarantine duration; doubles on each re-quarantine.
    pub quarantine_base: Duration,
    /// Upper bound on the quarantine backoff.
    pub quarantine_cap: Duration,
    /// Metrics sampling interval. `Some` starts a sampler thread that
    /// snapshots the daemon's counters, latency and occupancy into the
    /// `OP_SERIES` ring at this cadence; `None` (the default) samples
    /// only on demand ([`CacheDaemon::sample_now`]).
    pub sample_interval: Option<Duration>,
}

impl DaemonConfig {
    /// A sensible loopback configuration.
    #[must_use]
    pub fn loopback(id: CacheId, capacity: ByteSize, scheme: PlacementScheme) -> Self {
        Self {
            id,
            capacity,
            policy: PolicyKind::Lru,
            scheme,
            window: ExpirationWindow::default(),
            shards: 1,
            icp_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_secs(5),
            peer_retries: 1,
            quarantine_after: 2,
            quarantine_base: Duration::from_millis(250),
            quarantine_cap: Duration::from_secs(8),
            sample_interval: None,
        }
    }
}

/// The sockets a daemon has bound, published before peers start.
#[derive(Debug)]
pub struct BoundSockets {
    icp: UdpSocket,
    doc: TcpListener,
    /// The ICP endpoint peers should query.
    pub icp_addr: SocketAddr,
    /// The TCP endpoint peers should fetch documents from.
    pub doc_addr: SocketAddr,
}

impl BoundSockets {
    /// Binds fresh loopback sockets on ephemeral ports.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_loopback() -> io::Result<Self> {
        let icp = UdpSocket::bind("127.0.0.1:0")?;
        let doc = TcpListener::bind("127.0.0.1:0")?;
        let icp_addr = icp.local_addr()?;
        let doc_addr = doc.local_addr()?;
        Ok(Self {
            icp,
            doc,
            icp_addr,
            doc_addr,
        })
    }
}

/// Where a client request was ultimately served from — the key of the
/// daemon's wall-clock latency breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServeSource {
    /// Served from this daemon's own cache.
    Local,
    /// Fetched from the given peer over TCP.
    Peer(CacheId),
    /// Fetched from the origin server.
    Origin,
}

impl fmt::Display for ServeSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Local => f.write_str("local"),
            Self::Peer(id) => write!(f, "peer:{}", id.as_u16()),
            Self::Origin => f.write_str("origin"),
        }
    }
}

/// Per-peer failure bookkeeping behind the quarantine policy.
#[derive(Debug, Clone, Copy, Default)]
struct PeerHealth {
    /// Failures since the last successful interaction.
    consecutive_failures: u32,
    /// Times this peer has been quarantined (the backoff exponent).
    quarantines: u32,
    /// Clock microsecond until which the peer is benched (0 = active).
    quarantined_until_us: u64,
}

/// A peer-fetch failure: which protocol step failed and how. Absorbed by
/// failover, never surfaced to the client.
#[derive(Debug)]
struct PeerFetchError {
    op: FaultOp,
    error: io::Error,
}

impl PeerFetchError {
    fn connect(error: io::Error) -> Self {
        Self {
            op: FaultOp::Connect,
            error,
        }
    }

    fn transfer(error: io::Error) -> Self {
        Self {
            op: FaultOp::Transfer,
            error,
        }
    }
}

/// State shared between the daemon handle and its server threads.
#[derive(Clone)]
struct LoopCtx {
    id: CacheId,
    node: Arc<ConcurrentNode>,
    stop: Arc<AtomicBool>,
    sink: Arc<Mutex<Option<SinkHandle>>>,
    faults: Option<Arc<FaultState>>,
    clock: SharedClock,
    /// Always-on live counters behind the `OP_STATS` snapshot.
    stats: Arc<StatsRegistry>,
    /// Wall-clock latency histograms, shared with the daemon handle so
    /// the doc server can serve them over `OP_STATS`.
    latency: Arc<Mutex<BTreeMap<ServeSource, Histogram>>>,
    /// Peer health map, shared for the same reason.
    health: Arc<Mutex<BTreeMap<CacheId, PeerHealth>>>,
    /// Sampled time-series ring, shared with the sampler thread and the
    /// daemon handle so the doc server can serve it over `OP_SERIES`.
    series: Arc<Mutex<SeriesRing>>,
    /// Span id allocator, shared with the daemon handle so client-side
    /// and server-side spans of one daemon never collide.
    span_seq: Arc<AtomicU64>,
}

impl LoopCtx {
    fn emit(&self, event: &Event) {
        self.stats.record(event.kind());
        if let Some(sink) = lock(&self.sink).as_ref() {
            sink.emit(event);
        }
    }

    fn next_span(&self) -> u64 {
        scoped_id(self.id, self.span_seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    fn loop_error(&self, server: ServerLoop, e: &io::Error) {
        self.emit(&Event::ServerLoopError {
            cache: self.id,
            server,
            error: error_label(e),
        });
    }
}

/// A running cache daemon.
#[derive(Debug)]
pub struct CacheDaemon {
    config: DaemonConfig,
    node: Arc<ConcurrentNode>,
    clock: SharedClock,
    peers: Vec<PeerAddr>,
    origin: SocketAddr,
    icp_addr: SocketAddr,
    doc_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Optional event stream, shared with the server loops; installed
    /// into the node too, so placement and eviction events flow
    /// alongside the daemon's request events.
    sink: Arc<Mutex<Option<SinkHandle>>>,
    /// Request sequence numbers for the event stream and trace ids.
    seq: AtomicU64,
    /// Always-on live counters, served over `OP_STATS`. Shared with the
    /// server loops and the inner node.
    stats: Arc<StatsRegistry>,
    /// Span id allocator shared with the server loops.
    span_seq: Arc<AtomicU64>,
    /// Measured wall-clock request latency (µs), split by serve source.
    /// Shared with the doc server so `OP_STATS` can report it.
    latency: Arc<Mutex<BTreeMap<ServeSource, Histogram>>>,
    /// Consecutive-failure counts and quarantine state per peer.
    /// Shared with the doc server so `OP_STATS` can report it.
    health: Arc<Mutex<BTreeMap<CacheId, PeerHealth>>>,
    /// Sampled time-series ring, shared with the sampler thread and the
    /// doc server so `OP_SERIES` can report it.
    series: Arc<Mutex<SeriesRing>>,
}

impl CacheDaemon {
    /// Starts a daemon on pre-bound sockets.
    ///
    /// `peers` lists every *other* cache in the group; `origin` is the
    /// stub origin server misses resolve against.
    ///
    /// # Errors
    ///
    /// Propagates socket configuration and thread-spawn failures.
    pub fn start(
        config: DaemonConfig,
        sockets: BoundSockets,
        peers: Vec<PeerAddr>,
        origin: SocketAddr,
        clock: SharedClock,
    ) -> io::Result<Self> {
        Self::start_with_faults(config, sockets, peers, origin, clock, None)
    }

    /// Starts a daemon with an optional compiled fault state injected
    /// into its server loops (see [`crate::FaultPlan`]).
    pub(crate) fn start_with_faults(
        config: DaemonConfig,
        sockets: BoundSockets,
        peers: Vec<PeerAddr>,
        origin: SocketAddr,
        clock: SharedClock,
        faults: Option<FaultState>,
    ) -> io::Result<Self> {
        let node = Arc::new(ConcurrentNode::from_config(
            CacheConfig::new(config.id, config.capacity, config.policy)
                .window(config.window)
                .shards(config.shards),
            config.scheme,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let sink: Arc<Mutex<Option<SinkHandle>>> = Arc::new(Mutex::new(None));
        let stats = Arc::new(StatsRegistry::new());
        let span_seq = Arc::new(AtomicU64::new(0));
        let latency: Arc<Mutex<BTreeMap<ServeSource, Histogram>>> =
            Arc::new(Mutex::new(BTreeMap::new()));
        let health: Arc<Mutex<BTreeMap<CacheId, PeerHealth>>> =
            Arc::new(Mutex::new(BTreeMap::new()));
        // The ring exists even without a sampler thread, so on-demand
        // samples and `OP_SERIES` scrapes always have a document.
        let interval_ms = config
            .sample_interval
            .map_or(1_000, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
        let series = Arc::new(Mutex::new(SeriesRing::new(
            config.id,
            interval_ms,
            DEFAULT_SERIES_CAPACITY,
        )));
        // Placement/eviction decisions count into the same registry as
        // the daemon's own events, with or without a sink.
        node.set_stats(Arc::clone(&stats));
        let faults = faults.map(Arc::new);
        let mut threads = Vec::new();
        let ctx = LoopCtx {
            id: config.id,
            node: Arc::clone(&node),
            stop: Arc::clone(&stop),
            sink: Arc::clone(&sink),
            faults,
            clock: clock.clone(),
            stats: Arc::clone(&stats),
            latency: Arc::clone(&latency),
            health: Arc::clone(&health),
            series: Arc::clone(&series),
            span_seq: Arc::clone(&span_seq),
        };

        // ICP responder thread.
        sockets
            .icp
            .set_read_timeout(Some(Duration::from_millis(20)))?;
        {
            let ctx = ctx.clone();
            let socket = sockets.icp;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("coopcache-icp-{}", config.id))
                    .spawn(move || icp_loop(&socket, &ctx))?,
            );
        }

        // Document server thread.
        sockets.doc.set_nonblocking(true)?;
        {
            let ctx = ctx.clone();
            let listener = sockets.doc;
            let io_timeout = config.io_timeout;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("coopcache-doc-{}", config.id))
                    .spawn(move || doc_loop(&listener, &ctx, io_timeout))?,
            );
        }

        // Metrics sampler thread, only when an interval is configured.
        if let Some(interval) = config.sample_interval {
            threads.push(
                std::thread::Builder::new()
                    .name(format!("coopcache-sample-{}", config.id))
                    .spawn(move || sample_loop(&ctx, interval))?,
            );
        }

        Ok(Self {
            config,
            node,
            clock,
            peers,
            origin,
            icp_addr: sockets.icp_addr,
            doc_addr: sockets.doc_addr,
            stop,
            threads,
            sink,
            seq: AtomicU64::new(0),
            stats,
            span_seq,
            latency,
            health,
            series,
        })
    }

    /// This daemon's cache id.
    #[must_use]
    pub fn id(&self) -> CacheId {
        self.config.id
    }

    /// The ICP (UDP) endpoint this daemon answers queries on.
    #[must_use]
    pub fn icp_addr(&self) -> SocketAddr {
        self.icp_addr
    }

    /// The TCP endpoint this daemon serves documents from.
    #[must_use]
    pub fn doc_addr(&self) -> SocketAddr {
        self.doc_addr
    }

    /// Installs an event sink: the daemon emits a `Request` event (with
    /// measured wall-clock latency) per served request plus the failover
    /// events (`PeerFault`, `Failover`, `PeerQuarantined`,
    /// `ServerLoopError`), and the inner node emits placement/eviction
    /// events through the same sink.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.node.set_sink(sink.clone());
        *lock(&self.sink) = Some(sink);
    }

    fn emit(&self, event: &Event) {
        self.stats.record(event.kind());
        if let Some(sink) = lock(&self.sink).as_ref() {
            sink.emit(event);
        }
    }

    /// Allocates the next span id, scoped to this daemon's cache id so
    /// ids from different daemons never collide in one trace.
    fn next_span(&self) -> u64 {
        scoped_id(
            self.config.id,
            self.span_seq.fetch_add(1, Ordering::Relaxed) + 1,
        )
    }

    /// Stamps `span` closed at the current clock and emits it.
    fn close_span(&self, mut span: Span) {
        span.end_us = self.clock.now_micros();
        self.emit(&Event::Span(span));
    }

    /// Deterministic JSON snapshot of this daemon's live state: event
    /// counters, latency histograms, quarantined peers, cache occupancy
    /// and the current cache expiration age (paper eq. 5). This is the
    /// same document the daemon serves over `OP_STATS`.
    #[must_use]
    pub fn stats_json(&self) -> String {
        build_stats_json(
            self.config.id,
            &self.stats,
            &self.latency,
            &self.health,
            &self.node,
            &self.clock,
        )
    }

    /// Deterministic JSON document of this daemon's sampled time
    /// series — the same document it serves over `OP_SERIES`.
    #[must_use]
    pub fn series_json(&self) -> String {
        lock(&self.series).to_json()
    }

    /// A clone of the sampled time-series ring.
    #[must_use]
    pub fn series(&self) -> SeriesRing {
        lock(&self.series).clone()
    }

    /// Takes one time-series sample immediately, regardless of the
    /// configured interval (tests and one-shot scrapes need points
    /// without waiting out a wall-clock cadence).
    pub fn sample_now(&self) {
        let point = sample_point(
            &self.stats,
            &self.latency,
            &self.health,
            &self.node,
            &self.clock,
        );
        lock(&self.series).push(point);
    }

    /// Snapshot of the wall-clock latency histograms, one per serve
    /// source, in `ServeSource` order.
    #[must_use]
    pub fn latency_snapshots(&self) -> Vec<(ServeSource, HistogramSnapshot)> {
        lock(&self.latency)
            .iter()
            .map(|(source, hist)| (*source, hist.snapshot()))
            .collect()
    }

    /// Peers currently under quarantine (for inspection and tests).
    #[must_use]
    pub fn quarantined_peers(&self) -> Vec<CacheId> {
        let now_us = self.clock.now_micros();
        lock(&self.health)
            .iter()
            .filter(|(_, h)| now_us < h.quarantined_until_us)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Runs a closure with read access to the underlying node (for
    /// inspecting stats and cache contents).
    pub fn with_node<R>(&self, f: impl FnOnce(&ConcurrentNode) -> R) -> R {
        f(&self.node)
    }

    /// Serves one client request end-to-end over the real network,
    /// recording its wall-clock latency (and emitting a `Request` event
    /// when a sink is installed).
    ///
    /// # Errors
    ///
    /// Propagates only local socket failures and an unreachable origin.
    /// Peer failures — a responder that died, reset the connection, or
    /// truncated the body between ICP reply and fetch — are absorbed by
    /// failover to the remaining candidates and finally the origin,
    /// never reported as an error.
    pub fn request(&self, doc: DocId, size: ByteSize) -> io::Result<RequestOutcome> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let trace = scoped_id(self.config.id, seq);
        let root = self.next_span();
        let started_us = self.clock.now_micros();
        let outcome = self.serve(doc, size, trace, root)?;
        let ended_us = self.clock.now_micros();
        let latency_us = ended_us.saturating_sub(started_us);
        let source = match outcome {
            RequestOutcome::LocalHit => ServeSource::Local,
            RequestOutcome::RemoteHit { responder, .. } => ServeSource::Peer(responder),
            RequestOutcome::Miss { .. } => ServeSource::Origin,
        };
        lock(&self.latency)
            .entry(source)
            .or_default()
            .record(latency_us);
        let (class, responder, stored) = outcome.event_parts();
        self.emit(&Event::Span(Span {
            trace_id: trace,
            span_id: root,
            parent: None,
            cache: self.config.id,
            kind: SpanKind::Request,
            doc: Some(doc),
            peer: None,
            start_us: started_us,
            end_us: ended_us,
            status: class.name(),
        }));
        self.emit(&Event::Request {
            seq,
            cache: self.config.id,
            doc,
            class,
            responder,
            stored,
            latency_us: Some(latency_us),
        });
        Ok(outcome)
    }

    /// The protocol flow behind [`CacheDaemon::request`]. `trace` is the
    /// request's trace id, `root` its root span: every protocol step
    /// opens a child span under `root`, and remote steps carry the
    /// context on the wire so peers attach their server-side spans to
    /// the same tree.
    fn serve(
        &self,
        doc: DocId,
        size: ByteSize,
        trace: u64,
        root: u64,
    ) -> io::Result<RequestOutcome> {
        // 1. Local lookup.
        let now = self.clock.now();
        if self.node.handle_client_lookup(doc, now).is_some() {
            return Ok(RequestOutcome::LocalHit);
        }

        // 2. ICP fan-out over UDP: collect every positive replier within
        // the deadline, in arrival order.
        let candidates = self.icp_candidates(doc, trace, root)?;

        // 3a. Remote fetch with piggybacked expiration ages, failing
        // over through the candidate list.
        for (i, peer) in candidates.iter().enumerate() {
            let span_id = self.next_span();
            let start_us = self.clock.now_micros();
            let ctx = TraceCtx {
                trace_id: trace,
                parent_span: span_id,
            };
            let fetch_span = |status: &'static str| Span {
                trace_id: trace,
                span_id,
                parent: Some(root),
                cache: self.config.id,
                kind: SpanKind::PeerFetch,
                doc: Some(doc),
                peer: Some(peer.id),
                start_us,
                end_us: 0,
                status,
            };
            match self.fetch_with_retry(*peer, doc, ctx) {
                Ok(Some(outcome)) => {
                    let stored = matches!(
                        outcome,
                        RequestOutcome::RemoteHit {
                            stored_locally: true,
                            ..
                        }
                    );
                    self.close_span(fetch_span(if stored { "stored" } else { "declined" }));
                    self.note_peer_ok(peer.id);
                    return Ok(outcome);
                }
                // Peer lost the document between ICP and fetch: an
                // honest answer from a healthy peer — try the next one.
                Ok(None) => {
                    self.close_span(fetch_span("not-found"));
                    self.note_peer_ok(peer.id);
                }
                Err(fault) => {
                    self.close_span(fetch_span(error_label(&fault.error)));
                    self.emit(&Event::PeerFault {
                        cache: self.config.id,
                        peer: peer.id,
                        doc,
                        op: fault.op,
                        error: error_label(&fault.error),
                    });
                    self.note_peer_failure(peer.id);
                    self.emit(&Event::Failover {
                        cache: self.config.id,
                        doc,
                        from: peer.id,
                        to: candidates.get(i + 1).map(|p| p.id),
                    });
                }
            }
        }

        // 3b. Origin fetch; the requester always stores (distributed
        // architecture, paper §4.1).
        let span_id = self.next_span();
        let start_us = self.clock.now_micros();
        fetch_from_origin(
            self.origin,
            doc.as_u64(),
            size.as_bytes(),
            self.config.io_timeout,
        )?;
        let stored = self.node.complete_origin_fetch(doc, size, self.clock.now());
        self.close_span(Span {
            trace_id: trace,
            span_id,
            parent: Some(root),
            cache: self.config.id,
            kind: SpanKind::OriginFetch,
            doc: Some(doc),
            peer: None,
            start_us,
            end_us: 0,
            status: if stored { "stored" } else { "declined" },
        });
        Ok(RequestOutcome::Miss {
            stored_locally: stored,
            stored_at_ancestor: false,
        })
    }

    /// Queries every non-quarantined peer over UDP and returns all that
    /// replied with a hit, deduplicated by cache id, in arrival order.
    ///
    /// Per-peer send failures and ICP silence are health signals, not
    /// request errors; only local socket failures propagate.
    fn icp_candidates(&self, doc: DocId, trace: u64, root: u64) -> io::Result<Vec<PeerAddr>> {
        if self.peers.is_empty() {
            return Ok(Vec::new());
        }
        let round = self.next_span();
        let start_us = self.clock.now_micros();
        let round_span = |status: &'static str| Span {
            trace_id: trace,
            span_id: round,
            parent: Some(root),
            cache: self.config.id,
            kind: SpanKind::IcpRound,
            doc: Some(doc),
            peer: None,
            start_us,
            end_us: 0,
            status,
        };
        let now_us = self.clock.now_micros();
        let targets: Vec<PeerAddr> = self
            .peers
            .iter()
            .copied()
            .filter(|p| !self.is_quarantined(p.id, now_us))
            .collect();
        if targets.is_empty() {
            self.close_span(round_span("miss"));
            return Ok(Vec::new());
        }
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        socket.set_read_timeout(Some(Duration::from_millis(20)))?;
        let query = WireMessage::IcpQuery {
            query: IcpQuery {
                from: self.config.id,
                doc,
            },
            ctx: Some(TraceCtx {
                trace_id: trace,
                parent_span: round,
            }),
        }
        .encode();
        let mut queried: Vec<CacheId> = Vec::new();
        for peer in &targets {
            match socket.send_to(&query, peer.icp) {
                Ok(_) => queried.push(peer.id),
                Err(e) => {
                    // A vanished peer must not fail the request.
                    self.emit(&Event::PeerFault {
                        cache: self.config.id,
                        peer: peer.id,
                        doc,
                        op: FaultOp::Icp,
                        error: error_label(&e),
                    });
                    self.note_peer_failure(peer.id);
                }
            }
        }
        let timeout_us = u64::try_from(self.config.icp_timeout.as_micros()).unwrap_or(u64::MAX);
        let deadline_us = self.clock.now_micros().saturating_add(timeout_us);
        let mut buf = [0u8; 64];
        let mut seen: Vec<CacheId> = Vec::new();
        let mut positive: Vec<PeerAddr> = Vec::new();
        while self.clock.now_micros() < deadline_us && seen.len() < queried.len() {
            // Timeouts poll the deadline; any other transient recv error
            // is skipped — never a client error.
            let Ok((n, _)) = socket.recv_from(&mut buf) else {
                continue;
            };
            if let Ok(WireMessage::IcpReply(reply)) = WireMessage::decode(&buf[..n]) {
                if reply.doc != doc {
                    continue; // stale reply from an earlier query
                }
                if !queried.contains(&reply.from) || seen.contains(&reply.from) {
                    continue; // stray sender, or a duplicate reply
                }
                seen.push(reply.from);
                if reply.hit {
                    if let Some(p) = targets.iter().find(|p| p.id == reply.from) {
                        positive.push(*p);
                    }
                }
            }
        }
        // Silence before the deadline is a failed health probe.
        for id in &queried {
            if !seen.contains(id) {
                self.emit(&Event::PeerFault {
                    cache: self.config.id,
                    peer: *id,
                    doc,
                    op: FaultOp::Icp,
                    error: "silent",
                });
                self.note_peer_failure(*id);
            }
        }
        self.close_span(round_span(if positive.is_empty() { "miss" } else { "hit" }));
        Ok(positive)
    }

    /// One candidate fetch with the configured number of bounded
    /// retries.
    fn fetch_with_retry(
        &self,
        peer: PeerAddr,
        doc: DocId,
        ctx: TraceCtx,
    ) -> Result<Option<RequestOutcome>, PeerFetchError> {
        let mut last = self.fetch_from_peer(peer, doc, ctx);
        for _ in 0..self.config.peer_retries {
            if last.is_ok() {
                break;
            }
            last = self.fetch_from_peer(peer, doc, ctx);
        }
        last
    }

    /// Fetches `doc` from `peer` over TCP. Returns `Ok(None)` when the
    /// peer no longer holds the document.
    fn fetch_from_peer(
        &self,
        peer: PeerAddr,
        doc: DocId,
        ctx: TraceCtx,
    ) -> Result<Option<RequestOutcome>, PeerFetchError> {
        let sent = self.node.build_http_request(doc);
        let mut stream = TcpStream::connect_timeout(&peer.doc, self.config.io_timeout)
            .map_err(PeerFetchError::connect)?;
        stream.set_nodelay(true).map_err(PeerFetchError::transfer)?;
        stream
            .set_read_timeout(Some(self.config.io_timeout))
            .map_err(PeerFetchError::transfer)?;
        stream
            .set_write_timeout(Some(self.config.io_timeout))
            .map_err(PeerFetchError::transfer)?;
        write_frame(
            &mut stream,
            &WireMessage::DocRequest {
                request: sent,
                ctx: Some(ctx),
            },
        )
        .map_err(PeerFetchError::transfer)?;
        let decoded = read_frame(&mut stream).map_err(PeerFetchError::transfer)?;
        let WireMessage::DocResponse { response, found } = decoded else {
            return Err(PeerFetchError::transfer(io::Error::new(
                io::ErrorKind::InvalidData,
                "peer sent a non-response message",
            )));
        };
        if !found {
            return Ok(None);
        }
        drain_body(&mut stream, response.size.as_bytes()).map_err(PeerFetchError::transfer)?;
        let promoted = self
            .config
            .scheme
            .responder_promotes(response.responder_age, sent.requester_age);
        let stored = self
            .node
            .complete_remote_fetch(sent, response, self.clock.now());
        Ok(Some(RequestOutcome::RemoteHit {
            responder: peer.id,
            stored_locally: stored,
            promoted_at_responder: promoted,
        }))
    }

    /// True while `peer` is benched by the quarantine policy.
    fn is_quarantined(&self, peer: CacheId, now_us: u64) -> bool {
        lock(&self.health)
            .get(&peer)
            .is_some_and(|h| now_us < h.quarantined_until_us)
    }

    /// A successful interaction fully rehabilitates the peer.
    fn note_peer_ok(&self, peer: CacheId) {
        let mut health = lock(&self.health);
        if let Some(h) = health.get_mut(&peer) {
            *h = PeerHealth::default();
        }
    }

    /// Records a failure; past the threshold the peer is quarantined
    /// with exponential backoff (doubling per quarantine, capped).
    fn note_peer_failure(&self, peer: CacheId) {
        if self.config.quarantine_after == 0 {
            return;
        }
        let event = {
            let mut health = lock(&self.health);
            let h = health.entry(peer).or_default();
            h.consecutive_failures = h.consecutive_failures.saturating_add(1);
            if h.consecutive_failures < self.config.quarantine_after {
                None
            } else {
                let backoff = self
                    .config
                    .quarantine_base
                    .saturating_mul(1u32 << h.quarantines.min(16))
                    .min(self.config.quarantine_cap);
                let backoff_us = u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
                h.quarantined_until_us = self.clock.now_micros().saturating_add(backoff_us);
                h.quarantines = h.quarantines.saturating_add(1);
                Some(Event::PeerQuarantined {
                    cache: self.config.id,
                    peer,
                    failures: u64::from(h.consecutive_failures),
                    backoff_ms: u64::try_from(backoff.as_millis()).unwrap_or(u64::MAX),
                })
            }
        };
        if let Some(event) = event {
            self.emit(&event);
        }
    }

    /// Stops the background server threads and waits for them to exit,
    /// leaving the handle usable for inspection. Peers see a killed
    /// daemon as a dead sibling: ICP queries go unanswered and document
    /// connections are refused.
    pub fn halt(&mut self) {
        // lint:allow(atomic-order) -- Release: pairs with the Acquire
        // loads in the server loops, so a loop that observes the flag
        // also observes everything written before shutdown began.
        self.stop.store(true, Ordering::Release);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Stops the background threads and waits for them to exit.
    pub fn shutdown(mut self) {
        self.halt();
    }
}

impl Drop for CacheDaemon {
    fn drop(&mut self) {
        // Non-blocking best effort; `shutdown` is the clean path.
        // lint:allow(atomic-order) -- Release: same pairing as `halt`.
        self.stop.store(true, Ordering::Release);
    }
}

fn icp_loop(socket: &UdpSocket, ctx: &LoopCtx) {
    let mut buf = [0u8; 64];
    // lint:allow(atomic-order) -- Acquire: pairs with the Release store
    // in `halt`, ordering the flag read before loop teardown.
    while !ctx.stop.load(Ordering::Acquire) {
        match socket.recv_from(&mut buf) {
            Ok((n, from)) => {
                if let Ok(WireMessage::IcpQuery { query, ctx: trace }) =
                    WireMessage::decode(&buf[..n])
                {
                    let fault = ctx
                        .faults
                        .as_deref()
                        .map_or(IcpFault::None, FaultState::icp_fault);
                    if fault == IcpFault::DropQuery {
                        continue; // the query datagram "was lost"
                    }
                    let start_us = ctx.clock.now_micros();
                    let reply = ctx.node.handle_icp_query(query);
                    // The span id is allocated before the (possibly
                    // delayed) send, so this daemon's id sequence is
                    // ordered by protocol causality, not by emit races.
                    let span_id = trace.map(|_| ctx.next_span());
                    match fault {
                        IcpFault::DropReply => {} // the reply "was lost"
                        IcpFault::DelayReply(d) => {
                            std::thread::sleep(d);
                            let _ = socket.send_to(&WireMessage::IcpReply(reply).encode(), from);
                        }
                        _ => {
                            let _ = socket.send_to(&WireMessage::IcpReply(reply).encode(), from);
                        }
                    }
                    if let (Some(t), Some(span_id)) = (trace, span_id) {
                        ctx.emit(&Event::Span(Span {
                            trace_id: t.trace_id,
                            span_id,
                            parent: Some(t.parent_span),
                            cache: ctx.id,
                            kind: SpanKind::IcpHandle,
                            doc: Some(query.doc),
                            peer: Some(query.from),
                            start_us,
                            end_us: ctx.clock.now_micros(),
                            status: if reply.hit { "hit" } else { "miss" },
                        }));
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            // Transient socket errors degrade to a logged event, never a
            // silently dead responder; only shutdown exits the loop.
            Err(e) => {
                ctx.loop_error(ServerLoop::Icp, &e);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn doc_loop(listener: &TcpListener, ctx: &LoopCtx, io_timeout: Duration) {
    // lint:allow(atomic-order) -- Acquire: pairs with the Release store
    // in `halt`, ordering the flag read before loop teardown.
    while !ctx.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let fault = ctx
                    .faults
                    .as_deref()
                    .map_or(DocFault::None, FaultState::doc_fault);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(io_timeout));
                let _ = stream.set_write_timeout(Some(io_timeout));
                // A stats probe shares the doc port and is answered even
                // on a refuse-rigged daemon; peeking (not reading) keeps
                // the refused document fetch dying with its frame unread.
                if fault == DocFault::Refuse && !crate::wire::frame_is_stats_probe(&stream) {
                    continue; // close before reading: died between ICP and fetch
                }
                if let Err(e) = serve_doc(&mut stream, ctx, fault) {
                    // A misbehaving client connection is logged and the
                    // listener keeps serving.
                    ctx.loop_error(ServerLoop::Doc, &e);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => {
                ctx.loop_error(ServerLoop::Doc, &e);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

fn serve_doc(stream: &mut TcpStream, ctx: &LoopCtx, fault: DocFault) -> io::Result<()> {
    let start_us = ctx.clock.now_micros();
    let (request, trace) = match read_frame(stream)? {
        // A stats scrape shares the doc port; it is answered even on a
        // fault-injected daemon — observability must survive chaos.
        WireMessage::StatsRequest => {
            let body = build_stats_json(
                ctx.id,
                &ctx.stats,
                &ctx.latency,
                &ctx.health,
                &ctx.node,
                &ctx.clock,
            );
            write_frame(
                stream,
                &WireMessage::StatsResponse {
                    cache: ctx.id,
                    body_len: u64::try_from(body.len()).unwrap_or(u64::MAX),
                },
            )?;
            return stream.write_all(body.as_bytes());
        }
        // A series scrape shares the doc port and survives chaos the
        // same way the stats probe does.
        WireMessage::SeriesRequest => {
            let body = lock(&ctx.series).to_json();
            write_frame(
                stream,
                &WireMessage::SeriesResponse {
                    cache: ctx.id,
                    body_len: u64::try_from(body.len()).unwrap_or(u64::MAX),
                },
            )?;
            return stream.write_all(body.as_bytes());
        }
        WireMessage::DocRequest {
            request,
            ctx: trace,
        } => (request, trace),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected a document request",
            ))
        }
    };
    if fault == DocFault::Reset {
        return Ok(()); // drop the connection after reading: crash mid-exchange
    }
    let span_id = trace.map(|_| ctx.next_span());
    let (response, found, promoted) = {
        let node = &ctx.node;
        let scheme = node.scheme();
        match node.handle_http_request(request, ctx.clock.now()) {
            Some(response) => {
                // Mirror of the responder-side promote rule (paper §3.5)
                // the node just applied, recomputed for the span status.
                let promoted =
                    scheme.responder_promotes(response.responder_age, request.requester_age);
                (response, true, promoted)
            }
            None => (
                coopcache_proxy::HttpResponse {
                    from: node.id(),
                    doc: request.doc,
                    size: ByteSize::ZERO,
                    responder_age: node.expiration_age(),
                },
                false,
                false,
            ),
        }
    };
    write_frame(stream, &WireMessage::DocResponse { response, found })?;
    if found {
        let full = response.size.as_bytes();
        let len = if fault == DocFault::Truncate {
            full / 2 // half the body, then the connection drops
        } else {
            full
        };
        write_body(stream, len)?;
    }
    if let (Some(t), Some(span_id)) = (trace, span_id) {
        let status = if !found {
            "not-found"
        } else if promoted {
            "promoted"
        } else {
            "kept"
        };
        ctx.emit(&Event::Span(Span {
            trace_id: t.trace_id,
            span_id,
            parent: Some(t.parent_span),
            cache: ctx.id,
            kind: SpanKind::DocServe,
            doc: Some(request.doc),
            peer: Some(request.from),
            start_us,
            end_us: ctx.clock.now_micros(),
            status,
        }));
    }
    Ok(())
}

/// Builds the deterministic JSON document behind `OP_STATS`: per-kind
/// event counters (zeros included, [`coopcache_obs::EVENT_KINDS`]
/// order), wall-clock
/// latency snapshots per serve source, currently quarantined peers,
/// cache occupancy, and the live cache expiration age (paper eq. 5,
/// `null` while the cache still reports an infinite age).
fn build_stats_json(
    cache: CacheId,
    stats: &StatsRegistry,
    latency: &Mutex<BTreeMap<ServeSource, Histogram>>,
    health: &Mutex<BTreeMap<CacheId, PeerHealth>>,
    node: &ConcurrentNode,
    clock: &SharedClock,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("cache");
    w.u64(u64::from(cache.as_u16()));
    w.key("counters");
    stats.write_counters(&mut w);
    w.key("latency");
    w.begin_object();
    for (source, hist) in lock(latency).iter() {
        w.key(&source.to_string());
        hist.snapshot().write_json_us(&mut w);
    }
    w.end_object();
    w.key("quarantined");
    w.begin_array();
    let now_us = clock.now_micros();
    for (id, h) in lock(health).iter() {
        if now_us < h.quarantined_until_us {
            w.u64(u64::from(id.as_u16()));
        }
    }
    w.end_array();
    let (docs, used, capacity, age_ms, profile) = {
        let cache = node.cache();
        (
            u64::try_from(cache.len()).unwrap_or(u64::MAX),
            cache.used().as_bytes(),
            cache.capacity().as_bytes(),
            age_to_ms(node.expiration_age()),
            cache.profile(),
        )
    };
    w.key("occupancy");
    w.begin_object();
    w.key("docs");
    w.u64(docs);
    w.key("used_bytes");
    w.u64(used);
    w.key("capacity_bytes");
    w.u64(capacity);
    w.end_object();
    w.key("expiration_age_ms");
    w.opt_u64(age_ms);
    w.key("profile");
    write_profile_json(&mut w, profile);
    w.end_object();
    w.finish()
}

/// Writes the `profile` section of the stats document: `null` when the
/// workspace was built without the core `profile` feature, else one
/// object per hot-path op with call count and accumulated wall time.
fn write_profile_json(w: &mut JsonWriter, profile: Option<coopcache_core::ProfileSnapshot>) {
    let Some(p) = profile else {
        w.null();
        return;
    };
    w.begin_object();
    for op in coopcache_core::ProfileOp::ALL {
        let slot = p.op(op);
        w.key(op.name());
        w.begin_object();
        w.key("calls");
        w.u64(slot.calls);
        w.key("total_ns");
        w.u64(slot.total_ns);
        w.key("mean_ns");
        w.u64(slot.mean_ns());
        w.end_object();
    }
    w.end_object();
}

/// Takes one time-series sample of a daemon's live state: cumulative
/// event counters, the merged request-latency histogram, cache
/// occupancy, the live expiration age (paper eq. 5) and the number of
/// quarantined peers, stamped with the daemon clock.
fn sample_point(
    stats: &StatsRegistry,
    latency: &Mutex<BTreeMap<ServeSource, Histogram>>,
    health: &Mutex<BTreeMap<CacheId, PeerHealth>>,
    node: &ConcurrentNode,
    clock: &SharedClock,
) -> SeriesPoint {
    let mut counters = [0u64; coopcache_obs::EVENT_KINDS.len()];
    for (slot, (_, count)) in counters.iter_mut().zip(stats.snapshot()) {
        *slot = count;
    }
    let mut merged = Histogram::new();
    for hist in lock(latency).values() {
        merged.merge(hist);
    }
    let snapshot = merged.snapshot();
    let now_us = clock.now_micros();
    let quarantined = lock(health)
        .values()
        .filter(|h| now_us < h.quarantined_until_us)
        .count();
    let (docs, used_bytes, capacity_bytes, expiration_age_ms) = {
        let cache = node.cache();
        (
            u64::try_from(cache.len()).unwrap_or(u64::MAX),
            cache.used().as_bytes(),
            cache.capacity().as_bytes(),
            age_to_ms(node.expiration_age()),
        )
    };
    SeriesPoint {
        t_ms: clock.now().as_millis(),
        counters,
        latency: (snapshot.count > 0).then_some(snapshot),
        docs,
        used_bytes,
        capacity_bytes,
        expiration_age_ms,
        quarantined: u64::try_from(quarantined).unwrap_or(u64::MAX),
    }
}

/// Sampler thread body: pushes one [`SeriesPoint`] per interval into
/// the shared ring. The sleep is chunked so shutdown never blocks
/// behind a long interval.
fn sample_loop(ctx: &LoopCtx, interval: Duration) {
    // lint:allow(atomic-order) -- Acquire: pairs with the Release store
    // in `halt`, ordering the flag read before loop teardown.
    while !ctx.stop.load(Ordering::Acquire) {
        let mut remaining = interval;
        while !remaining.is_zero() {
            // lint:allow(atomic-order) -- Acquire: same pairing as above.
            if ctx.stop.load(Ordering::Acquire) {
                return;
            }
            let chunk = remaining.min(Duration::from_millis(5));
            std::thread::sleep(chunk);
            remaining = remaining.saturating_sub(chunk);
        }
        let point = sample_point(&ctx.stats, &ctx.latency, &ctx.health, &ctx.node, &ctx.clock);
        lock(&ctx.series).push(point);
    }
}
