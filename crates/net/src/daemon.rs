//! A live cache daemon: one proxy node served over real sockets.
//!
//! Each daemon runs two background threads — an ICP responder on a UDP
//! socket and a document server on a TCP listener — around the same
//! I/O-free [`ProxyNode`] the simulators use. The client-facing
//! [`CacheDaemon::request`] drives the full protocol over the loopback
//! network: local lookup, UDP ICP fan-out, TCP fetch from the positive
//! repliers in arrival order (with expiration ages piggybacked both
//! ways), origin fallback.
//!
//! # Fault tolerance
//!
//! The responder that answered an ICP query may be dead, slow, or lying
//! by the time the HTTP fetch arrives. The daemon absorbs every peer
//! failure instead of surfacing it to the client:
//!
//! * **Multi-candidate failover** — the ICP wait collects *all* positive
//!   repliers (deduplicated by cache id, ordered by arrival); the fetch
//!   tries them in order with one bounded retry each and falls back to
//!   the origin when the list is exhausted.
//! * **Peer health tracking** — consecutive failures (including ICP
//!   silence) quarantine a peer with exponential backoff, so a dead
//!   sibling stops costing an ICP timeout on every group miss.
//! * **Resilient server loops** — transient socket errors are logged as
//!   [`Event::ServerLoopError`] and the loop keeps serving; only
//!   shutdown exits.
//!
//! Chaos runs are auditable through the event stream (`PeerFault`,
//! `Failover`, `PeerQuarantined`, `ServerLoopError`) and driven by a
//! seeded [`FaultPlan`](crate::FaultPlan) compiled into the server loops.
//!
//! # Transport
//!
//! Readiness is the kernel's job: every socket is fully blocking (the
//! workspace forbids `unsafe`, so there is no epoll — a parked thread
//! blocked in `recv`/`accept`/`read` *is* the readiness mechanism, and
//! it burns zero CPU at idle, unlike the 20 ms poll loops this design
//! replaced). The document port serves each accepted connection on its
//! own thread, bounded by [`DaemonConfig::max_conns`], and connections
//! are *persistent*: a client may pipeline any number of frames on one
//! connection. Shutdown wakes the blocked threads explicitly — a junk
//! datagram for the ICP responder, a throwaway connect for the
//! acceptor, and a `shutdown(2)` on every registered live connection.
//!
//! The client side pools its outbound peer/origin connections
//! (`pool.rs`) and sheds cacheable-store work under memory pressure
//! (`memory.rs`); both surface in the stats plane as the
//! `connections-reused` and `admission-shed` counters.

use crate::clock::SharedClock;
use crate::fault::{DocFault, FaultState, IcpFault};
use crate::memory::AdmissionGate;
use crate::origin::{drain_body, fetch_on_origin_conn, write_body};
use crate::pool::ConnectionPool;
use crate::wire::{peek_frame_kind, read_frame, write_frame, PeekedFrame, WireMessage};
use coopcache_core::{CacheConfig, ExpirationWindow, PlacementScheme, PolicyKind};
use coopcache_obs::{
    age_to_ms, scoped_id, AlertEngine, AlertRule, Event, FaultOp, Histogram, HistogramSnapshot,
    JsonWriter, Sampler, SamplerConfig, SeriesPoint, SeriesRing, ServerLoop, SinkHandle, Span,
    SpanKind, StatsRegistry, TraceCtx, DEFAULT_SERIES_CAPACITY,
};
use coopcache_proxy::{ConcurrentNode, IcpQuery, RequestOutcome};
use coopcache_types::{ByteSize, CacheId, DocId};
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::io::{BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Locks a mutex, recovering the data from a poisoned lock — a panicked
/// server thread should degrade the daemon, not wedge it.
fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Lock-free copy of the installed sink's sampler, refreshed by
/// `set_sink`. The per-frame head decision runs at request rate and must
/// not take the sink lock; two relaxed atomics carry the config
/// (`rate_plus_one` packs presence: `0` = no sampler, `r + 1` = rate
/// `r`). A torn read during a concurrent `set_sink` can at worst pair
/// one sampler's seed with another's rate — still a pure, valid
/// decision, and every driver installs its sink before serving anyway.
#[derive(Debug, Default)]
struct SamplerSnapshot {
    seed: AtomicU64,
    rate_plus_one: AtomicU64,
}

impl SamplerSnapshot {
    fn store(&self, config: Option<SamplerConfig>) {
        match config {
            Some(c) => {
                self.seed.store(c.seed, Ordering::Relaxed);
                self.rate_plus_one
                    .store(u64::from(c.rate) + 1, Ordering::Relaxed);
            }
            None => self.rate_plus_one.store(0, Ordering::Relaxed),
        }
    }

    /// Whether a sampler is installed at all — lets hot paths skip even
    /// the trace-id computation in the unsampled posture.
    fn active(&self) -> bool {
        self.rate_plus_one.load(Ordering::Relaxed) != 0
    }

    fn keeps_trace(&self, trace: u64) -> bool {
        match self.rate_plus_one.load(Ordering::Relaxed) {
            0 => true,
            r => {
                let rate = u32::try_from(r - 1).unwrap_or(u32::MAX);
                let seed = self.seed.load(Ordering::Relaxed);
                Sampler::new(SamplerConfig::new(seed, rate)).keeps_trace(trace)
            }
        }
    }
}

/// Extends the installed sink's head-sampling decision to a whole
/// request: when the sampler drops `trace`, every request-scoped event
/// emitted while the returned guard lives (request completion,
/// placement, ICP, conn-reuse and span lines) is shed before the sink
/// lock. Health kinds keep flowing and `OP_STATS` counters are recorded
/// ahead of the sink, so both stay exact at any sampling rate.
fn mute_if_unsampled(
    snap: &SamplerSnapshot,
    trace: u64,
) -> Option<coopcache_obs::RequestMuteGuard> {
    (!snap.keeps_trace(trace)).then(coopcache_obs::mute_request_scoped)
}

/// True when `e` is a socket-timeout error. Which `ErrorKind` a timed
/// out read/write surfaces as is platform-dependent (`WouldBlock` on
/// most Unixes, `TimedOut` elsewhere); every timeout decision in this
/// crate goes through this predicate so a timed-out but healthy pooled
/// connection is reaped/retried uniformly, never misclassified by
/// platform.
pub(crate) fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Maps an I/O error onto the closed label vocabulary the event stream
/// uses (stable across runs, so chaos traces stay deterministic).
fn error_label(e: &io::Error) -> &'static str {
    match e.kind() {
        io::ErrorKind::ConnectionRefused => "refused",
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe => "reset",
        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => "timeout",
        io::ErrorKind::UnexpectedEof => "eof",
        io::ErrorKind::InvalidData => "proto",
        _ => "io",
    }
}

/// Addresses a daemon needs to reach a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerAddr {
    /// The peer's cache id.
    pub id: CacheId,
    /// Its ICP (UDP) endpoint.
    pub icp: SocketAddr,
    /// Its document (TCP) endpoint.
    pub doc: SocketAddr,
}

/// Timeouts, identity, and failover policy for a daemon.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// This daemon's cache id.
    pub id: CacheId,
    /// Cache capacity.
    pub capacity: ByteSize,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Placement scheme.
    pub scheme: PlacementScheme,
    /// Expiration-age window.
    pub window: ExpirationWindow,
    /// Shard count for the node's cache (power of two). With more than
    /// one shard, requests touching different shards are served
    /// concurrently by the daemon's threads instead of serializing on a
    /// node-wide lock; `1` reproduces the single-store behavior exactly.
    pub shards: usize,
    /// How long to wait for ICP replies before declaring a group miss.
    pub icp_timeout: Duration,
    /// Per-connection I/O timeout.
    pub io_timeout: Duration,
    /// Extra fetch attempts per failed candidate (bounded retry).
    pub peer_retries: u32,
    /// Consecutive failures before a peer is quarantined (0 disables
    /// quarantine entirely).
    pub quarantine_after: u32,
    /// First quarantine duration; doubles on each re-quarantine.
    pub quarantine_base: Duration,
    /// Upper bound on the quarantine backoff.
    pub quarantine_cap: Duration,
    /// Metrics sampling interval. `Some` starts a sampler thread that
    /// snapshots the daemon's counters, latency and occupancy into the
    /// `OP_SERIES` ring at this cadence; `None` (the default) samples
    /// only on demand ([`CacheDaemon::sample_now`]).
    pub sample_interval: Option<Duration>,
    /// Outbound connection pooling: idle connections kept per remote
    /// host. `0` disables pooling (every fetch pays a fresh connect).
    pub pool_max_idle: usize,
    /// Pooled connections idle longer than this are reaped instead of
    /// reused.
    pub pool_idle_timeout: Duration,
    /// Cap on concurrently served inbound document connections; beyond
    /// it, new connections are closed at accept (peers absorb the
    /// refusal through their normal failover path).
    pub max_conns: usize,
    /// How the admission gate measures available memory.
    pub memory_probe: crate::MemoryProbe,
    /// Available-memory floor (percent): below it the daemon sheds
    /// cacheable-store work after origin fetches (it still serves the
    /// bytes). `0` disables admission control.
    pub min_available_pct: u8,
    /// Declarative SLO rules evaluated against every series sample
    /// (interval cadence and [`CacheDaemon::sample_now`] alike). Each
    /// state transition is emitted as an [`Event::Alert`] and counted in
    /// the `OP_STATS` registry. Empty (the default) disables the plane.
    pub alerts: Vec<AlertRule>,
}

impl DaemonConfig {
    /// A sensible loopback configuration.
    #[must_use]
    pub fn loopback(id: CacheId, capacity: ByteSize, scheme: PlacementScheme) -> Self {
        Self {
            id,
            capacity,
            policy: PolicyKind::Lru,
            scheme,
            window: ExpirationWindow::default(),
            shards: 1,
            icp_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_secs(5),
            peer_retries: 1,
            quarantine_after: 2,
            quarantine_base: Duration::from_millis(250),
            quarantine_cap: Duration::from_secs(8),
            sample_interval: None,
            pool_max_idle: 8,
            pool_idle_timeout: Duration::from_secs(30),
            max_conns: 64,
            memory_probe: crate::MemoryProbe::Meminfo,
            min_available_pct: 5,
            alerts: Vec::new(),
        }
    }
}

/// The sockets a daemon has bound, published before peers start.
#[derive(Debug)]
pub struct BoundSockets {
    icp: UdpSocket,
    doc: TcpListener,
    /// The ICP endpoint peers should query.
    pub icp_addr: SocketAddr,
    /// The TCP endpoint peers should fetch documents from.
    pub doc_addr: SocketAddr,
}

impl BoundSockets {
    /// Binds fresh loopback sockets on ephemeral ports.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_loopback() -> io::Result<Self> {
        let icp = UdpSocket::bind("127.0.0.1:0")?;
        let doc = TcpListener::bind("127.0.0.1:0")?;
        let icp_addr = icp.local_addr()?;
        let doc_addr = doc.local_addr()?;
        Ok(Self {
            icp,
            doc,
            icp_addr,
            doc_addr,
        })
    }
}

/// Where a client request was ultimately served from — the key of the
/// daemon's wall-clock latency breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServeSource {
    /// Served from this daemon's own cache.
    Local,
    /// Fetched from the given peer over TCP.
    Peer(CacheId),
    /// Fetched from the origin server.
    Origin,
}

impl fmt::Display for ServeSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Local => f.write_str("local"),
            Self::Peer(id) => write!(f, "peer:{}", id.as_u16()),
            Self::Origin => f.write_str("origin"),
        }
    }
}

/// Per-peer failure bookkeeping behind the quarantine policy.
#[derive(Debug, Clone, Copy, Default)]
struct PeerHealth {
    /// Failures since the last successful interaction.
    consecutive_failures: u32,
    /// Times this peer has been quarantined (the backoff exponent).
    quarantines: u32,
    /// Clock microsecond until which the peer is benched (0 = active).
    quarantined_until_us: u64,
}

/// A peer-fetch failure: which protocol step failed and how. Absorbed by
/// failover, never surfaced to the client.
#[derive(Debug)]
struct PeerFetchError {
    op: FaultOp,
    error: io::Error,
}

impl PeerFetchError {
    fn connect(error: io::Error) -> Self {
        Self {
            op: FaultOp::Connect,
            error,
        }
    }

    fn transfer(error: io::Error) -> Self {
        Self {
            op: FaultOp::Transfer,
            error,
        }
    }
}

/// Registry of live server-side document connections, shared between
/// the accept loop (inserts), each connection thread (removes itself)
/// and `halt` (shuts every stream down to unblock parked reads, then
/// joins the threads). The two locks are leaves: nothing blocking runs
/// under either guard, and neither is ever held while taking the other.
#[derive(Debug, Default)]
struct ConnTable {
    /// `try_clone`d handles of live connections by connection sequence.
    doc_conns: Mutex<BTreeMap<u64, TcpStream>>,
    /// Join handles of the per-connection server threads.
    doc_handles: Mutex<Vec<JoinHandle<()>>>,
}

impl ConnTable {
    /// Number of connections currently being served.
    fn active(&self) -> usize {
        lock(&self.doc_conns).len()
    }

    /// Unblocks every parked connection thread, then joins them all.
    fn shutdown_all(&self) {
        let drained: Vec<TcpStream> = {
            let mut conns = lock(&self.doc_conns);
            std::mem::take(&mut *conns).into_values().collect()
        };
        // Socket teardown happens outside the guard: a connection
        // thread removing itself must never contend with a blocking op.
        for stream in &drained {
            let _ = stream.shutdown(Shutdown::Both);
        }
        drop(drained);
        let handles: Vec<JoinHandle<()>> = {
            let mut handles = lock(&self.doc_handles);
            std::mem::take(&mut *handles)
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// State shared between the daemon handle and its server threads.
#[derive(Clone)]
struct LoopCtx {
    id: CacheId,
    node: Arc<ConcurrentNode>,
    stop: Arc<AtomicBool>,
    sink: Arc<Mutex<Option<SinkHandle>>>,
    faults: Option<Arc<FaultState>>,
    clock: SharedClock,
    /// Always-on live counters behind the `OP_STATS` snapshot.
    stats: Arc<StatsRegistry>,
    /// Wall-clock latency histograms, shared with the daemon handle so
    /// the doc server can serve them over `OP_STATS`.
    latency: Arc<Mutex<BTreeMap<ServeSource, Histogram>>>,
    /// Peer health map, shared for the same reason.
    health: Arc<Mutex<BTreeMap<CacheId, PeerHealth>>>,
    /// Sampled time-series ring, shared with the sampler thread and the
    /// daemon handle so the doc server can serve it over `OP_SERIES`.
    series: Arc<Mutex<SeriesRing>>,
    /// SLO rule evaluation state, fed one point per series sample.
    alerts: Arc<Mutex<AlertEngine>>,
    /// Span id allocator, shared with the daemon handle so client-side
    /// and server-side spans of one daemon never collide.
    span_seq: Arc<AtomicU64>,
    /// Live inbound document connections, shared with `halt`.
    conns: Arc<ConnTable>,
    /// Server-loop iteration counters (ICP, doc accept). A quiet daemon
    /// makes no iterations — the idle-CPU regression test pins this.
    icp_iters: Arc<AtomicU64>,
    accept_iters: Arc<AtomicU64>,
    /// Lock-free view of the sink's sampler for per-frame decisions.
    sampler_snap: Arc<SamplerSnapshot>,
}

impl LoopCtx {
    fn emit(&self, event: &Event) {
        self.stats.record(event.kind());
        // Request-scoped kinds on a muted thread would be dropped by the
        // sink handle; bail before the registry lock (the counter above
        // stays exact either way).
        if event.kind().is_request_scoped() && coopcache_obs::request_scoped_muted() {
            return;
        }
        if let Some(sink) = lock(&self.sink).as_ref() {
            sink.emit(event);
        }
    }

    fn next_span(&self) -> u64 {
        scoped_id(self.id, self.span_seq.fetch_add(1, Ordering::Relaxed) + 1)
    }

    fn loop_error(&self, server: ServerLoop, e: &io::Error) {
        self.emit(&Event::ServerLoopError {
            cache: self.id,
            server,
            error: error_label(e),
        });
    }
}

/// A running cache daemon.
#[derive(Debug)]
pub struct CacheDaemon {
    config: DaemonConfig,
    node: Arc<ConcurrentNode>,
    clock: SharedClock,
    peers: Vec<PeerAddr>,
    origin: SocketAddr,
    icp_addr: SocketAddr,
    doc_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
    /// Optional event stream, shared with the server loops; installed
    /// into the node too, so placement and eviction events flow
    /// alongside the daemon's request events.
    sink: Arc<Mutex<Option<SinkHandle>>>,
    /// Request sequence numbers for the event stream and trace ids.
    seq: AtomicU64,
    /// Always-on live counters, served over `OP_STATS`. Shared with the
    /// server loops and the inner node.
    stats: Arc<StatsRegistry>,
    /// Span id allocator shared with the server loops.
    span_seq: Arc<AtomicU64>,
    /// Measured wall-clock request latency (µs), split by serve source.
    /// Shared with the doc server so `OP_STATS` can report it.
    latency: Arc<Mutex<BTreeMap<ServeSource, Histogram>>>,
    /// Consecutive-failure counts and quarantine state per peer.
    /// Shared with the doc server so `OP_STATS` can report it.
    health: Arc<Mutex<BTreeMap<CacheId, PeerHealth>>>,
    /// Sampled time-series ring, shared with the sampler thread and the
    /// doc server so `OP_SERIES` can report it.
    series: Arc<Mutex<SeriesRing>>,
    /// SLO rule evaluation state, shared with the sampler thread.
    alerts: Arc<Mutex<AlertEngine>>,
    /// Pooled outbound peer/origin connections.
    pool: ConnectionPool,
    /// Memory-pressure gate over cacheable-store work.
    admission: AdmissionGate,
    /// Live inbound connections, shared with the accept loop.
    conns: Arc<ConnTable>,
    /// Server-loop iteration counters, shared with the loops.
    icp_iters: Arc<AtomicU64>,
    accept_iters: Arc<AtomicU64>,
    /// Lock-free view of the sink's sampler, shared with the loops so
    /// the per-frame head decision never takes the sink lock.
    sampler_snap: Arc<SamplerSnapshot>,
}

impl CacheDaemon {
    /// Starts a daemon on pre-bound sockets.
    ///
    /// `peers` lists every *other* cache in the group; `origin` is the
    /// stub origin server misses resolve against.
    ///
    /// # Errors
    ///
    /// Propagates socket configuration and thread-spawn failures.
    pub fn start(
        config: DaemonConfig,
        sockets: BoundSockets,
        peers: Vec<PeerAddr>,
        origin: SocketAddr,
        clock: SharedClock,
    ) -> io::Result<Self> {
        Self::start_with_faults(config, sockets, peers, origin, clock, None)
    }

    /// Starts a daemon with an optional compiled fault state injected
    /// into its server loops (see [`crate::FaultPlan`]).
    pub(crate) fn start_with_faults(
        config: DaemonConfig,
        sockets: BoundSockets,
        peers: Vec<PeerAddr>,
        origin: SocketAddr,
        clock: SharedClock,
        faults: Option<FaultState>,
    ) -> io::Result<Self> {
        let node = Arc::new(ConcurrentNode::from_config(
            CacheConfig::new(config.id, config.capacity, config.policy)
                .window(config.window)
                .shards(config.shards),
            config.scheme,
        ));
        let stop = Arc::new(AtomicBool::new(false));
        let sink: Arc<Mutex<Option<SinkHandle>>> = Arc::new(Mutex::new(None));
        let stats = Arc::new(StatsRegistry::new());
        let span_seq = Arc::new(AtomicU64::new(0));
        let latency: Arc<Mutex<BTreeMap<ServeSource, Histogram>>> =
            Arc::new(Mutex::new(BTreeMap::new()));
        let health: Arc<Mutex<BTreeMap<CacheId, PeerHealth>>> =
            Arc::new(Mutex::new(BTreeMap::new()));
        // The ring exists even without a sampler thread, so on-demand
        // samples and `OP_SERIES` scrapes always have a document.
        let interval_ms = config
            .sample_interval
            .map_or(1_000, |d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX));
        let series = Arc::new(Mutex::new(SeriesRing::new(
            config.id,
            interval_ms,
            DEFAULT_SERIES_CAPACITY,
        )));
        let alerts = Arc::new(Mutex::new(AlertEngine::new(
            config.id,
            config.alerts.clone(),
        )));
        // Placement/eviction decisions count into the same registry as
        // the daemon's own events, with or without a sink.
        node.set_stats(Arc::clone(&stats));
        let faults = faults.map(Arc::new);
        let conns = Arc::new(ConnTable::default());
        let icp_iters = Arc::new(AtomicU64::new(0));
        let accept_iters = Arc::new(AtomicU64::new(0));
        let sampler_snap = Arc::new(SamplerSnapshot::default());
        let mut threads = Vec::new();
        let ctx = LoopCtx {
            id: config.id,
            node: Arc::clone(&node),
            stop: Arc::clone(&stop),
            sink: Arc::clone(&sink),
            faults,
            clock: clock.clone(),
            stats: Arc::clone(&stats),
            latency: Arc::clone(&latency),
            health: Arc::clone(&health),
            series: Arc::clone(&series),
            alerts: Arc::clone(&alerts),
            span_seq: Arc::clone(&span_seq),
            conns: Arc::clone(&conns),
            icp_iters: Arc::clone(&icp_iters),
            accept_iters: Arc::clone(&accept_iters),
            sampler_snap: Arc::clone(&sampler_snap),
        };

        // ICP responder thread: a plain blocking `recv_from` with no
        // timeout — `halt` wakes it with a junk datagram.
        {
            let ctx = ctx.clone();
            let socket = sockets.icp;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("coopcache-icp-{}", config.id))
                    .spawn(move || icp_loop(&socket, &ctx))?,
            );
        }

        // Document acceptor thread: a plain blocking `accept` — `halt`
        // wakes it with a throwaway connect.
        {
            let ctx = ctx.clone();
            let listener = sockets.doc;
            let io_timeout = config.io_timeout;
            let max_conns = config.max_conns;
            threads.push(
                std::thread::Builder::new()
                    .name(format!("coopcache-doc-{}", config.id))
                    .spawn(move || doc_loop(&listener, &ctx, io_timeout, max_conns))?,
            );
        }

        // Metrics sampler thread, only when an interval is configured.
        if let Some(interval) = config.sample_interval {
            threads.push(
                std::thread::Builder::new()
                    .name(format!("coopcache-sample-{}", config.id))
                    .spawn(move || sample_loop(&ctx, interval))?,
            );
        }

        let pool = ConnectionPool::new(config.pool_max_idle, config.pool_idle_timeout);
        let admission = AdmissionGate::new(config.memory_probe, config.min_available_pct);
        Ok(Self {
            config,
            node,
            clock,
            peers,
            origin,
            icp_addr: sockets.icp_addr,
            doc_addr: sockets.doc_addr,
            stop,
            threads,
            sink,
            seq: AtomicU64::new(0),
            stats,
            span_seq,
            latency,
            health,
            series,
            alerts,
            pool,
            admission,
            conns,
            icp_iters,
            accept_iters,
            sampler_snap,
        })
    }

    /// This daemon's cache id.
    #[must_use]
    pub fn id(&self) -> CacheId {
        self.config.id
    }

    /// The ICP (UDP) endpoint this daemon answers queries on.
    #[must_use]
    pub fn icp_addr(&self) -> SocketAddr {
        self.icp_addr
    }

    /// The TCP endpoint this daemon serves documents from.
    #[must_use]
    pub fn doc_addr(&self) -> SocketAddr {
        self.doc_addr
    }

    /// Installs an event sink: the daemon emits a `Request` event (with
    /// measured wall-clock latency) per served request plus the failover
    /// events (`PeerFault`, `Failover`, `PeerQuarantined`,
    /// `ServerLoopError`), and the inner node emits placement/eviction
    /// events through the same sink.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        self.sampler_snap.store(sink.sampler());
        self.node.set_sink(sink.clone());
        *lock(&self.sink) = Some(sink);
    }

    fn emit(&self, event: &Event) {
        self.stats.record(event.kind());
        // Request-scoped kinds on a muted thread would be dropped by the
        // sink handle; bail before the registry lock (the counter above
        // stays exact either way).
        if event.kind().is_request_scoped() && coopcache_obs::request_scoped_muted() {
            return;
        }
        if let Some(sink) = lock(&self.sink).as_ref() {
            sink.emit(event);
        }
    }

    /// Allocates the next span id, scoped to this daemon's cache id so
    /// ids from different daemons never collide in one trace.
    fn next_span(&self) -> u64 {
        scoped_id(
            self.config.id,
            self.span_seq.fetch_add(1, Ordering::Relaxed) + 1,
        )
    }

    /// Stamps `span` closed at the current clock and emits it.
    fn close_span(&self, mut span: Span) {
        span.end_us = self.clock.now_micros();
        self.emit(&Event::Span(span));
    }

    /// Deterministic JSON snapshot of this daemon's live state: event
    /// counters, latency histograms, quarantined peers, cache occupancy
    /// and the current cache expiration age (paper eq. 5). This is the
    /// same document the daemon serves over `OP_STATS`.
    #[must_use]
    pub fn stats_json(&self) -> String {
        build_stats_json(
            self.config.id,
            &self.stats,
            &self.latency,
            &self.health,
            &self.node,
            &self.clock,
        )
    }

    /// Deterministic JSON document of this daemon's sampled time
    /// series — the same document it serves over `OP_SERIES`.
    #[must_use]
    pub fn series_json(&self) -> String {
        lock(&self.series).to_json()
    }

    /// A clone of the sampled time-series ring.
    #[must_use]
    pub fn series(&self) -> SeriesRing {
        lock(&self.series).clone()
    }

    /// Takes one time-series sample immediately, regardless of the
    /// configured interval (tests and one-shot scrapes need points
    /// without waiting out a wall-clock cadence).
    pub fn sample_now(&self) {
        let point = sample_point(
            &self.stats,
            &self.latency,
            &self.health,
            &self.node,
            &self.clock,
        );
        record_sample(point, &self.series, &self.alerts, |event| self.emit(event));
    }

    /// Snapshot of the wall-clock latency histograms, one per serve
    /// source, in `ServeSource` order.
    #[must_use]
    pub fn latency_snapshots(&self) -> Vec<(ServeSource, HistogramSnapshot)> {
        lock(&self.latency)
            .iter()
            .map(|(source, hist)| (*source, hist.snapshot()))
            .collect()
    }

    /// Peers currently under quarantine (for inspection and tests).
    #[must_use]
    pub fn quarantined_peers(&self) -> Vec<CacheId> {
        let now_us = self.clock.now_micros();
        lock(&self.health)
            .iter()
            .filter(|(_, h)| now_us < h.quarantined_until_us)
            .map(|(id, _)| *id)
            .collect()
    }

    /// Runs a closure with read access to the underlying node (for
    /// inspecting stats and cache contents).
    pub fn with_node<R>(&self, f: impl FnOnce(&ConcurrentNode) -> R) -> R {
        f(&self.node)
    }

    /// Cumulative server-loop iteration counts `(icp, doc_accept)`.
    /// Each count moves only when a datagram/connection actually
    /// arrives, so a quiet daemon holds both steady — the regression
    /// handle for the retired 20 ms poll loops.
    #[must_use]
    pub fn loop_iterations(&self) -> (u64, u64) {
        (
            self.icp_iters.load(Ordering::Relaxed),
            self.accept_iters.load(Ordering::Relaxed),
        )
    }

    /// Number of pooled outbound connections currently parked for
    /// `addr` (tests and diagnostics — e.g. asserting a quarantined
    /// peer's connections were discarded).
    #[must_use]
    pub fn pooled_idle_to(&self, addr: SocketAddr) -> usize {
        self.pool.idle_count(addr)
    }

    /// Serves one client request end-to-end over the real network,
    /// recording its wall-clock latency (and emitting a `Request` event
    /// when a sink is installed).
    ///
    /// # Errors
    ///
    /// Propagates only local socket failures and an unreachable origin.
    /// Peer failures — a responder that died, reset the connection, or
    /// truncated the body between ICP reply and fetch — are absorbed by
    /// failover to the remaining candidates and finally the origin,
    /// never reported as an error.
    pub fn request(&self, doc: DocId, size: ByteSize) -> io::Result<RequestOutcome> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let trace = scoped_id(self.config.id, seq);
        let _mute = mute_if_unsampled(&self.sampler_snap, trace);
        let root = self.next_span();
        let started_us = self.clock.now_micros();
        let outcome = self.serve(doc, size, trace, root)?;
        let ended_us = self.clock.now_micros();
        let latency_us = ended_us.saturating_sub(started_us);
        let source = match outcome {
            RequestOutcome::LocalHit => ServeSource::Local,
            RequestOutcome::RemoteHit { responder, .. } => ServeSource::Peer(responder),
            RequestOutcome::Miss { .. } => ServeSource::Origin,
        };
        lock(&self.latency)
            .entry(source)
            .or_default()
            .record(latency_us);
        let (class, responder, stored) = outcome.event_parts();
        self.emit(&Event::Span(Span {
            trace_id: trace,
            span_id: root,
            parent: None,
            cache: self.config.id,
            kind: SpanKind::Request,
            doc: Some(doc),
            peer: None,
            start_us: started_us,
            end_us: ended_us,
            status: class.name(),
        }));
        self.emit(&Event::Request {
            seq,
            cache: self.config.id,
            doc,
            class,
            responder,
            stored,
            latency_us: Some(latency_us),
        });
        Ok(outcome)
    }

    /// The protocol flow behind [`CacheDaemon::request`]. `trace` is the
    /// request's trace id, `root` its root span: every protocol step
    /// opens a child span under `root`, and remote steps carry the
    /// context on the wire so peers attach their server-side spans to
    /// the same tree.
    fn serve(
        &self,
        doc: DocId,
        size: ByteSize,
        trace: u64,
        root: u64,
    ) -> io::Result<RequestOutcome> {
        // 1. Local lookup.
        let now = self.clock.now();
        if self.node.handle_client_lookup(doc, now).is_some() {
            return Ok(RequestOutcome::LocalHit);
        }

        // 2. ICP fan-out over UDP: collect every positive replier within
        // the deadline, in arrival order.
        let candidates = self.icp_candidates(doc, trace, root)?;

        // 3a. Remote fetch with piggybacked expiration ages, failing
        // over through the candidate list.
        for (i, peer) in candidates.iter().enumerate() {
            let span_id = self.next_span();
            let start_us = self.clock.now_micros();
            let ctx = TraceCtx {
                trace_id: trace,
                parent_span: span_id,
            };
            let fetch_span = |status: &'static str| Span {
                trace_id: trace,
                span_id,
                parent: Some(root),
                cache: self.config.id,
                kind: SpanKind::PeerFetch,
                doc: Some(doc),
                peer: Some(peer.id),
                start_us,
                end_us: 0,
                status,
            };
            match self.fetch_with_retry(*peer, doc, ctx) {
                Ok(Some(outcome)) => {
                    let stored = matches!(
                        outcome,
                        RequestOutcome::RemoteHit {
                            stored_locally: true,
                            ..
                        }
                    );
                    self.close_span(fetch_span(if stored { "stored" } else { "declined" }));
                    self.note_peer_ok(peer.id);
                    return Ok(outcome);
                }
                // Peer lost the document between ICP and fetch: an
                // honest answer from a healthy peer — try the next one.
                Ok(None) => {
                    self.close_span(fetch_span("not-found"));
                    self.note_peer_ok(peer.id);
                }
                Err(fault) => {
                    self.close_span(fetch_span(error_label(&fault.error)));
                    self.emit(&Event::PeerFault {
                        cache: self.config.id,
                        peer: peer.id,
                        doc,
                        op: fault.op,
                        error: error_label(&fault.error),
                    });
                    self.note_peer_failure(peer.id);
                    self.emit(&Event::Failover {
                        cache: self.config.id,
                        doc,
                        from: peer.id,
                        to: candidates.get(i + 1).map(|p| p.id),
                    });
                }
            }
        }

        // 3b. Origin fetch; the requester stores (distributed
        // architecture, paper §4.1) unless the admission gate sheds the
        // store under memory pressure — the client still gets its bytes
        // either way.
        let span_id = self.next_span();
        let start_us = self.clock.now_micros();
        self.fetch_origin_pooled(doc.as_u64(), size.as_bytes())?;
        let admitted = self.admission.allow_store(&self.clock);
        let stored = if admitted {
            self.node.complete_origin_fetch(doc, size, self.clock.now())
        } else {
            self.emit(&Event::AdmissionShed {
                cache: self.config.id,
                doc,
            });
            false
        };
        let status = if !admitted {
            "shed"
        } else if stored {
            "stored"
        } else {
            "declined"
        };
        self.close_span(Span {
            trace_id: trace,
            span_id,
            parent: Some(root),
            cache: self.config.id,
            kind: SpanKind::OriginFetch,
            doc: Some(doc),
            peer: None,
            start_us,
            end_us: 0,
            status,
        });
        Ok(RequestOutcome::Miss {
            stored_locally: stored,
            stored_at_ancestor: false,
        })
    }

    /// Fetches `doc` from the origin on a pooled connection, with one
    /// transparent fresh-connection retry when a *reused* connection
    /// turns out to have died while parked (the origin restarting or
    /// reaping idle sockets is not an error worth surfacing).
    fn fetch_origin_pooled(&self, doc: u64, size: u64) -> io::Result<u64> {
        let checkout = self
            .pool
            .checkout(self.origin, self.config.io_timeout, &self.clock)?;
        let reused = checkout.reused;
        let mut stream = checkout.stream;
        match fetch_on_origin_conn(&mut stream, doc, size, self.config.io_timeout) {
            Ok(n) => {
                if reused {
                    self.emit(&Event::ConnReused {
                        cache: self.config.id,
                        peer: None,
                    });
                }
                self.pool.checkin(self.origin, stream, &self.clock);
                Ok(n)
            }
            Err(_) if reused => {
                // Stale pooled connection: everything else parked for
                // this host is at least as old, so drop the lot and
                // retry once on a fresh connect.
                drop(stream);
                self.pool.discard(self.origin);
                let fresh = self
                    .pool
                    .checkout(self.origin, self.config.io_timeout, &self.clock)?;
                let mut stream = fresh.stream;
                let n = fetch_on_origin_conn(&mut stream, doc, size, self.config.io_timeout)?;
                self.pool.checkin(self.origin, stream, &self.clock);
                Ok(n)
            }
            Err(e) => Err(e),
        }
    }

    /// Queries every non-quarantined peer over UDP and returns all that
    /// replied with a hit, deduplicated by cache id, in arrival order.
    ///
    /// Per-peer send failures and ICP silence are health signals, not
    /// request errors; only local socket failures propagate.
    fn icp_candidates(&self, doc: DocId, trace: u64, root: u64) -> io::Result<Vec<PeerAddr>> {
        if self.peers.is_empty() {
            return Ok(Vec::new());
        }
        let round = self.next_span();
        let start_us = self.clock.now_micros();
        let round_span = |status: &'static str| Span {
            trace_id: trace,
            span_id: round,
            parent: Some(root),
            cache: self.config.id,
            kind: SpanKind::IcpRound,
            doc: Some(doc),
            peer: None,
            start_us,
            end_us: 0,
            status,
        };
        let now_us = self.clock.now_micros();
        let targets: Vec<PeerAddr> = self
            .peers
            .iter()
            .copied()
            .filter(|p| !self.is_quarantined(p.id, now_us))
            .collect();
        if targets.is_empty() {
            self.close_span(round_span("miss"));
            return Ok(Vec::new());
        }
        let socket = UdpSocket::bind("127.0.0.1:0")?;
        let query = WireMessage::IcpQuery {
            query: IcpQuery {
                from: self.config.id,
                doc,
            },
            ctx: Some(TraceCtx {
                trace_id: trace,
                parent_span: round,
            }),
        }
        .encode();
        let mut queried: Vec<CacheId> = Vec::new();
        for peer in &targets {
            match socket.send_to(&query, peer.icp) {
                Ok(_) => queried.push(peer.id),
                Err(e) => {
                    // A vanished peer must not fail the request.
                    self.emit(&Event::PeerFault {
                        cache: self.config.id,
                        peer: peer.id,
                        doc,
                        op: FaultOp::Icp,
                        error: error_label(&e),
                    });
                    self.note_peer_failure(peer.id);
                }
            }
        }
        let timeout_us = u64::try_from(self.config.icp_timeout.as_micros()).unwrap_or(u64::MAX);
        let deadline_us = self.clock.now_micros().saturating_add(timeout_us);
        let mut buf = [0u8; 64];
        let mut seen: Vec<CacheId> = Vec::new();
        let mut positive: Vec<PeerAddr> = Vec::new();
        loop {
            if seen.len() >= queried.len() {
                break;
            }
            let now_us = self.clock.now_micros();
            if now_us >= deadline_us {
                break;
            }
            // One timed recv covering exactly the remaining window (the
            // loop guard keeps the duration nonzero, which `set_read_
            // timeout` requires) — replacing the retired 20 ms poll.
            socket.set_read_timeout(Some(Duration::from_micros(deadline_us - now_us)))?;
            let (n, _) = match socket.recv_from(&mut buf) {
                Ok(received) => received,
                Err(ref e) if is_timeout(e) => break, // deadline reached
                // Any other transient recv error is skipped — never a
                // client error.
                Err(_) => continue,
            };
            if let Ok(WireMessage::IcpReply(reply)) = WireMessage::decode(&buf[..n]) {
                if reply.doc != doc {
                    continue; // stale reply from an earlier query
                }
                if !queried.contains(&reply.from) || seen.contains(&reply.from) {
                    continue; // stray sender, or a duplicate reply
                }
                seen.push(reply.from);
                if reply.hit {
                    if let Some(p) = targets.iter().find(|p| p.id == reply.from) {
                        positive.push(*p);
                    }
                }
            }
        }
        // Silence before the deadline is a failed health probe.
        for id in &queried {
            if !seen.contains(id) {
                self.emit(&Event::PeerFault {
                    cache: self.config.id,
                    peer: *id,
                    doc,
                    op: FaultOp::Icp,
                    error: "silent",
                });
                self.note_peer_failure(*id);
            }
        }
        self.close_span(round_span(if positive.is_empty() { "miss" } else { "hit" }));
        Ok(positive)
    }

    /// One candidate fetch with the configured number of bounded
    /// retries.
    fn fetch_with_retry(
        &self,
        peer: PeerAddr,
        doc: DocId,
        ctx: TraceCtx,
    ) -> Result<Option<RequestOutcome>, PeerFetchError> {
        let mut last = self.fetch_from_peer(peer, doc, ctx);
        for _ in 0..self.config.peer_retries {
            if last.is_ok() {
                break;
            }
            last = self.fetch_from_peer(peer, doc, ctx);
        }
        last
    }

    /// Fetches `doc` from `peer` over a pooled TCP connection. Returns
    /// `Ok(None)` when the peer no longer holds the document.
    ///
    /// A failure on a *reused* connection gets one transparent retry on
    /// a fresh connect, with no `PeerFault` for the stale attempt: an
    /// idle pooled socket dying (peer restarted, far-side reap, timeout
    /// while parked) says nothing about the peer's present health. Only
    /// a fresh-connection failure is a peer fault, exactly as before
    /// pooling.
    fn fetch_from_peer(
        &self,
        peer: PeerAddr,
        doc: DocId,
        ctx: TraceCtx,
    ) -> Result<Option<RequestOutcome>, PeerFetchError> {
        let checkout = self
            .pool
            .checkout(peer.doc, self.config.io_timeout, &self.clock)
            .map_err(PeerFetchError::connect)?;
        let reused = checkout.reused;
        match self.exchange_with_peer(checkout.stream, peer, doc, ctx) {
            Ok(outcome) => {
                if reused {
                    self.emit(&Event::ConnReused {
                        cache: self.config.id,
                        peer: Some(peer.id),
                    });
                }
                Ok(outcome)
            }
            Err(_) if reused => {
                // Stale pooled connection: drop everything parked for
                // this peer (it is at least as old) and retry fresh.
                self.pool.discard(peer.doc);
                let fresh = self
                    .pool
                    .checkout(peer.doc, self.config.io_timeout, &self.clock)
                    .map_err(PeerFetchError::connect)?;
                self.exchange_with_peer(fresh.stream, peer, doc, ctx)
            }
            Err(e) => Err(e),
        }
    }

    /// One request/response exchange with `peer` on `stream`. A healthy
    /// exchange (including an honest not-found) parks the connection
    /// back in the pool; any error consumes it.
    fn exchange_with_peer(
        &self,
        mut stream: TcpStream,
        peer: PeerAddr,
        doc: DocId,
        ctx: TraceCtx,
    ) -> Result<Option<RequestOutcome>, PeerFetchError> {
        let sent = self.node.build_http_request(doc);
        stream.set_nodelay(true).map_err(PeerFetchError::transfer)?;
        stream
            .set_read_timeout(Some(self.config.io_timeout))
            .map_err(PeerFetchError::transfer)?;
        stream
            .set_write_timeout(Some(self.config.io_timeout))
            .map_err(PeerFetchError::transfer)?;
        write_frame(
            &mut stream,
            &WireMessage::DocRequest {
                request: sent,
                ctx: Some(ctx),
            },
        )
        .map_err(PeerFetchError::transfer)?;
        let decoded = read_frame(&mut stream).map_err(PeerFetchError::transfer)?;
        let WireMessage::DocResponse { response, found } = decoded else {
            return Err(PeerFetchError::transfer(io::Error::new(
                io::ErrorKind::InvalidData,
                "peer sent a non-response message",
            )));
        };
        if !found {
            self.pool.checkin(peer.doc, stream, &self.clock);
            return Ok(None);
        }
        drain_body(&mut stream, response.size.as_bytes()).map_err(PeerFetchError::transfer)?;
        self.pool.checkin(peer.doc, stream, &self.clock);
        let promoted = self
            .config
            .scheme
            .responder_promotes(response.responder_age, sent.requester_age);
        let stored = self
            .node
            .complete_remote_fetch(sent, response, self.clock.now());
        Ok(Some(RequestOutcome::RemoteHit {
            responder: peer.id,
            stored_locally: stored,
            promoted_at_responder: promoted,
        }))
    }

    /// True while `peer` is benched by the quarantine policy.
    fn is_quarantined(&self, peer: CacheId, now_us: u64) -> bool {
        lock(&self.health)
            .get(&peer)
            .is_some_and(|h| now_us < h.quarantined_until_us)
    }

    /// A successful interaction fully rehabilitates the peer.
    fn note_peer_ok(&self, peer: CacheId) {
        let mut health = lock(&self.health);
        if let Some(h) = health.get_mut(&peer) {
            *h = PeerHealth::default();
        }
    }

    /// Records a failure; past the threshold the peer is quarantined
    /// with exponential backoff (doubling per quarantine, capped).
    fn note_peer_failure(&self, peer: CacheId) {
        if self.config.quarantine_after == 0 {
            return;
        }
        let event = {
            let mut health = lock(&self.health);
            let h = health.entry(peer).or_default();
            h.consecutive_failures = h.consecutive_failures.saturating_add(1);
            if h.consecutive_failures < self.config.quarantine_after {
                None
            } else {
                let backoff = self
                    .config
                    .quarantine_base
                    .saturating_mul(1u32 << h.quarantines.min(16))
                    .min(self.config.quarantine_cap);
                let backoff_us = u64::try_from(backoff.as_micros()).unwrap_or(u64::MAX);
                h.quarantined_until_us = self.clock.now_micros().saturating_add(backoff_us);
                h.quarantines = h.quarantines.saturating_add(1);
                Some(Event::PeerQuarantined {
                    cache: self.config.id,
                    peer,
                    failures: u64::from(h.consecutive_failures),
                    backoff_ms: u64::try_from(backoff.as_millis()).unwrap_or(u64::MAX),
                })
            }
        };
        if let Some(event) = event {
            self.emit(&event);
            // A quarantined peer's parked connections are dead weight:
            // reusing one after the backoff window would mask whatever
            // got the peer benched. Discarded outside the health lock.
            if let Some(p) = self.peers.iter().find(|p| p.id == peer) {
                self.pool.discard(p.doc);
            }
        }
    }

    /// Best-effort wake-ups for the blocking server loops: a junk
    /// datagram unparks the ICP `recv_from`, a throwaway connect
    /// unparks the doc `accept`. Errors are ignored — if the sockets
    /// are already gone the loops are already dead.
    fn wake_server_loops(&self) {
        if let Ok(socket) = UdpSocket::bind("127.0.0.1:0") {
            let _ = socket.send_to(&[0u8], self.icp_addr);
        }
        drop(TcpStream::connect_timeout(
            &self.doc_addr,
            Duration::from_millis(500),
        ));
    }

    /// Stops the background server threads and waits for them to exit,
    /// leaving the handle usable for inspection. Peers see a killed
    /// daemon as a dead sibling: ICP queries go unanswered and document
    /// connections are refused.
    pub fn halt(&mut self) {
        // lint:allow(atomic-order) -- Release: pairs with the Acquire
        // loads in the server loops, so a loop that observes the flag
        // also observes everything written before shutdown began.
        self.stop.store(true, Ordering::Release);
        self.wake_server_loops();
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
        // With the acceptor joined, no new connections can register:
        // shut down and join every in-flight connection thread.
        self.conns.shutdown_all();
    }

    /// Stops the background threads and waits for them to exit.
    pub fn shutdown(mut self) {
        self.halt();
    }
}

impl Drop for CacheDaemon {
    fn drop(&mut self) {
        // Non-blocking best effort; `shutdown` is the clean path. The
        // wakes matter here too: the loops block indefinitely in the
        // kernel and only re-check the flag once woken.
        // lint:allow(atomic-order) -- Release: same pairing as `halt`.
        self.stop.store(true, Ordering::Release);
        if !self.threads.is_empty() {
            self.wake_server_loops();
        }
    }
}

fn icp_loop(socket: &UdpSocket, ctx: &LoopCtx) {
    let mut buf = [0u8; 64];
    // lint:allow(atomic-order) -- Acquire: pairs with the Release store
    // in `halt`, ordering the flag read before loop teardown.
    while !ctx.stop.load(Ordering::Acquire) {
        // The recv below blocks with no timeout: an iteration happens
        // only when a datagram arrives (or `halt` sends the wake one).
        ctx.icp_iters.fetch_add(1, Ordering::Relaxed);
        match socket.recv_from(&mut buf) {
            Ok((n, from)) => {
                if let Ok(WireMessage::IcpQuery { query, ctx: trace }) =
                    WireMessage::decode(&buf[..n])
                {
                    let fault = ctx
                        .faults
                        .as_deref()
                        .map_or(IcpFault::None, FaultState::icp_fault);
                    if fault == IcpFault::DropQuery {
                        continue; // the query datagram "was lost"
                    }
                    let start_us = ctx.clock.now_micros();
                    let reply = ctx.node.handle_icp_query(query);
                    // The span id is allocated before the (possibly
                    // delayed) send, so this daemon's id sequence is
                    // ordered by protocol causality, not by emit races.
                    let span_id = trace.map(|_| ctx.next_span());
                    match fault {
                        IcpFault::DropReply => {} // the reply "was lost"
                        IcpFault::DelayReply(d) => {
                            std::thread::sleep(d);
                            let _ = socket.send_to(&WireMessage::IcpReply(reply).encode(), from);
                        }
                        _ => {
                            let _ = socket.send_to(&WireMessage::IcpReply(reply).encode(), from);
                        }
                    }
                    if let (Some(t), Some(span_id)) = (trace, span_id) {
                        ctx.emit(&Event::Span(Span {
                            trace_id: t.trace_id,
                            span_id,
                            parent: Some(t.parent_span),
                            cache: ctx.id,
                            kind: SpanKind::IcpHandle,
                            doc: Some(query.doc),
                            peer: Some(query.from),
                            start_us,
                            end_us: ctx.clock.now_micros(),
                            status: if reply.hit { "hit" } else { "miss" },
                        }));
                    }
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            // Transient socket errors degrade to a logged event, never a
            // silently dead responder; only shutdown exits the loop.
            Err(e) => {
                ctx.loop_error(ServerLoop::Icp, &e);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// The document acceptor: a blocking `accept` loop that hands each
/// connection to its own server thread. Connections are persistent —
/// a client may pipeline any number of frames — and every live one is
/// registered in [`ConnTable`] so `halt` can unblock it.
fn doc_loop(listener: &TcpListener, ctx: &LoopCtx, io_timeout: Duration, max_conns: usize) {
    let mut conn_seq = 0u64;
    // lint:allow(atomic-order) -- Acquire: pairs with the Release store
    // in `halt`, ordering the flag read before loop teardown.
    while !ctx.stop.load(Ordering::Acquire) {
        // The accept below blocks: an iteration happens only when a
        // connection actually arrives (or `halt` sends the wake one).
        ctx.accept_iters.fetch_add(1, Ordering::Relaxed);
        match listener.accept() {
            Ok((stream, _)) => {
                // lint:allow(atomic-order) -- Acquire: same pairing; the
                // wake connection from `halt` must not spawn a server.
                if ctx.stop.load(Ordering::Acquire) {
                    break;
                }
                if ctx.conns.active() >= max_conns {
                    // Over the connection cap: shed by closing at
                    // accept. Peers absorb this through failover.
                    drop(stream);
                    continue;
                }
                let id = conn_seq;
                conn_seq += 1;
                if let Ok(clone) = stream.try_clone() {
                    lock(&ctx.conns.doc_conns).insert(id, clone);
                }
                let conn_ctx = ctx.clone();
                let spawned = std::thread::Builder::new()
                    .name(format!("coopcache-doc-{}-{id}", ctx.id))
                    .spawn(move || {
                        serve_conn(&stream, &conn_ctx, io_timeout);
                        lock(&conn_ctx.conns.doc_conns).remove(&id);
                    });
                match spawned {
                    Ok(handle) => lock(&ctx.conns.doc_handles).push(handle),
                    Err(e) => {
                        lock(&ctx.conns.doc_conns).remove(&id);
                        ctx.loop_error(ServerLoop::Doc, &e);
                    }
                }
            }
            Err(e) => {
                ctx.loop_error(ServerLoop::Doc, &e);
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Serves one inbound connection to completion: frames are read and
/// answered in a loop until the client closes, errors, or shutdown.
fn serve_conn(stream: &TcpStream, ctx: &LoopCtx, io_timeout: Duration) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    let mut served = 0u64;
    // Base for synthetic root trace ids handed to untraced frames: one
    // scoped id per connection, spread across the 64-bit space by the
    // sampler's own mixer, plus the frame ordinal. This keeps the hot
    // per-frame path free of the shared span counter while still giving
    // every untraced frame its own head-sampling decision.
    let conn_trace_base = coopcache_obs::splitmix64(ctx.next_span());
    let result = if ctx.faults.is_some() {
        serve_conn_raw(stream, ctx, &mut served, conn_trace_base)
    } else {
        serve_conn_buffered(stream, ctx, &mut served, conn_trace_base)
    };
    if let Err(e) = result {
        // Persistent-connection lifecycle is not an error: a clean EOF
        // (client closed, or `halt` shut the socket down) is always
        // silent, and a timeout after at least one served frame is just
        // an idle connection expiring. Anything else — garbage framing,
        // a connection that sent nothing until timeout — is logged and
        // the listener keeps serving.
        let benign = e.kind() == io::ErrorKind::UnexpectedEof || (served > 0 && is_timeout(&e));
        if !benign {
            ctx.loop_error(ServerLoop::Doc, &e);
        }
    }
}

/// The fault-free frame loop: buffered reads and writes, with the
/// write side flushed lazily — only once the read buffer runs dry (a
/// pipelined batch of requests is answered with a single `writev`-like
/// flush instead of one syscall pair per frame).
fn serve_conn_buffered(
    stream: &TcpStream,
    ctx: &LoopCtx,
    served: &mut u64,
    conn_trace_base: u64,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(stream);
    loop {
        // lint:allow(atomic-order) -- Acquire: pairs with the Release
        // store in `halt`.
        if ctx.stop.load(Ordering::Acquire) {
            return writer.flush();
        }
        if reader.buffer().is_empty() {
            writer.flush()?;
        }
        match serve_frame(
            &mut reader,
            &mut writer,
            ctx,
            DocFault::None,
            served,
            conn_trace_base,
        )? {
            FrameDisposition::KeepOpen => {}
            FrameDisposition::Close => return writer.flush(),
        }
    }
}

/// The fault-injected frame loop: unbuffered, one fault draw per frame
/// that actually arrives (peeked, so a refused fetch still dies with
/// its frame unread, exactly like the pre-pooling accept-time refusal).
fn serve_conn_raw(
    stream: &TcpStream,
    ctx: &LoopCtx,
    served: &mut u64,
    conn_trace_base: u64,
) -> io::Result<()> {
    loop {
        // lint:allow(atomic-order) -- Acquire: pairs with the Release
        // store in `halt`.
        if ctx.stop.load(Ordering::Acquire) {
            return Ok(());
        }
        // Wait (blocking peek) for the next frame before drawing a
        // fault: per-request fault semantics under connection reuse,
        // and an idle close consumes no draws — keeping seeded draw
        // sequences identical to the one-frame-per-connection era.
        let peeked = peek_frame_kind(stream)?;
        if peeked == PeekedFrame::Closed {
            return Ok(());
        }
        let fault = draw_doc_fault(ctx);
        // Stats/series probes are answered even on a refuse-rigged
        // daemon — observability survives chaos. A refused *document*
        // fetch closes with its frame unread, so to the client the
        // responder died between ICP reply and fetch.
        if fault == DocFault::Refuse && peeked == PeekedFrame::Doc {
            return Ok(());
        }
        let (mut reader, mut writer) = (stream, stream);
        match serve_frame(
            &mut reader,
            &mut writer,
            ctx,
            fault,
            served,
            conn_trace_base,
        )? {
            FrameDisposition::KeepOpen => {}
            FrameDisposition::Close => return Ok(()),
        }
    }
}

/// Draws one document-port fault for the frame about to be served.
fn draw_doc_fault(ctx: &LoopCtx) -> DocFault {
    ctx.faults
        .as_deref()
        .map_or(DocFault::None, FaultState::doc_fault)
}

/// What to do with the connection after a served frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrameDisposition {
    KeepOpen,
    Close,
}

/// Reads and answers exactly one frame. Generic over the I/O halves so
/// the fault-free path runs buffered while the fault path stays on the
/// raw stream (whose bytes the chaos tests pin).
fn serve_frame<R: Read, W: Write>(
    reader: &mut R,
    writer: &mut W,
    ctx: &LoopCtx,
    fault: DocFault,
    served: &mut u64,
    conn_trace_base: u64,
) -> io::Result<FrameDisposition> {
    let start_us = ctx.clock.now_micros();
    let (request, trace) = match read_frame(reader)? {
        // A stats scrape shares the doc port; it is answered even on a
        // fault-injected daemon — observability must survive chaos.
        WireMessage::StatsRequest => {
            let body = build_stats_json(
                ctx.id,
                &ctx.stats,
                &ctx.latency,
                &ctx.health,
                &ctx.node,
                &ctx.clock,
            );
            write_frame(
                writer,
                &WireMessage::StatsResponse {
                    cache: ctx.id,
                    body_len: u64::try_from(body.len()).unwrap_or(u64::MAX),
                },
            )?;
            writer.write_all(body.as_bytes())?;
            *served += 1;
            return Ok(FrameDisposition::KeepOpen);
        }
        // A series scrape shares the doc port and survives chaos the
        // same way the stats probe does.
        WireMessage::SeriesRequest => {
            let body = lock(&ctx.series).to_json();
            write_frame(
                writer,
                &WireMessage::SeriesResponse {
                    cache: ctx.id,
                    body_len: u64::try_from(body.len()).unwrap_or(u64::MAX),
                },
            )?;
            writer.write_all(body.as_bytes())?;
            *served += 1;
            return Ok(FrameDisposition::KeepOpen);
        }
        WireMessage::DocRequest {
            request,
            ctx: trace,
        } => (request, trace),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected a document request",
            ))
        }
    };
    if fault == DocFault::Reset {
        // Drop the connection after reading: crash mid-exchange.
        return Ok(FrameDisposition::Close);
    }
    // One head decision covers the whole frame: requests arriving with a
    // trace context reuse the requester's decision (pure in the trace
    // id, so both sides agree); untraced requests — raw clients hitting
    // the doc port — get a synthetic root trace, which is exactly what a
    // head sampler does for traffic entering at this hop.
    let _mute = if ctx.sampler_snap.active() {
        let frame_trace = trace.map_or(conn_trace_base.wrapping_add(*served), |t| t.trace_id);
        mute_if_unsampled(&ctx.sampler_snap, frame_trace)
    } else {
        None
    };
    if *served > 0 {
        // A second (or later) frame on one inbound connection: the
        // requester is reusing a persistent connection to this daemon.
        ctx.emit(&Event::ConnReused {
            cache: ctx.id,
            peer: Some(request.from),
        });
    }
    *served += 1;
    let span_id = trace.map(|_| ctx.next_span());
    let (response, found, promoted) = {
        let node = &ctx.node;
        let scheme = node.scheme();
        match node.handle_http_request(request, ctx.clock.now()) {
            Some(response) => {
                // Mirror of the responder-side promote rule (paper §3.5)
                // the node just applied, recomputed for the span status.
                let promoted =
                    scheme.responder_promotes(response.responder_age, request.requester_age);
                (response, true, promoted)
            }
            None => (
                coopcache_proxy::HttpResponse {
                    from: node.id(),
                    doc: request.doc,
                    size: ByteSize::ZERO,
                    responder_age: node.expiration_age(),
                },
                false,
                false,
            ),
        }
    };
    write_frame(writer, &WireMessage::DocResponse { response, found })?;
    let mut truncated = false;
    if found {
        let full = response.size.as_bytes();
        let len = if fault == DocFault::Truncate {
            truncated = true;
            full / 2 // half the body, then the connection drops
        } else {
            full
        };
        write_body(writer, len)?;
    }
    if let (Some(t), Some(span_id)) = (trace, span_id) {
        let status = if !found {
            "not-found"
        } else if promoted {
            "promoted"
        } else {
            "kept"
        };
        ctx.emit(&Event::Span(Span {
            trace_id: t.trace_id,
            span_id,
            parent: Some(t.parent_span),
            cache: ctx.id,
            kind: SpanKind::DocServe,
            doc: Some(request.doc),
            peer: Some(request.from),
            start_us,
            end_us: ctx.clock.now_micros(),
            status,
        }));
    }
    Ok(if truncated {
        FrameDisposition::Close
    } else {
        FrameDisposition::KeepOpen
    })
}

/// Builds the deterministic JSON document behind `OP_STATS`: per-kind
/// event counters (zeros included, [`coopcache_obs::EVENT_KINDS`]
/// order), wall-clock
/// latency snapshots per serve source, currently quarantined peers,
/// cache occupancy, and the live cache expiration age (paper eq. 5,
/// `null` while the cache still reports an infinite age).
fn build_stats_json(
    cache: CacheId,
    stats: &StatsRegistry,
    latency: &Mutex<BTreeMap<ServeSource, Histogram>>,
    health: &Mutex<BTreeMap<CacheId, PeerHealth>>,
    node: &ConcurrentNode,
    clock: &SharedClock,
) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("cache");
    w.u64(u64::from(cache.as_u16()));
    w.key("counters");
    stats.write_counters(&mut w);
    w.key("latency");
    w.begin_object();
    for (source, hist) in lock(latency).iter() {
        w.key(&source.to_string());
        hist.snapshot().write_json_us(&mut w);
    }
    w.end_object();
    w.key("quarantined");
    w.begin_array();
    let now_us = clock.now_micros();
    for (id, h) in lock(health).iter() {
        if now_us < h.quarantined_until_us {
            w.u64(u64::from(id.as_u16()));
        }
    }
    w.end_array();
    let (docs, used, capacity, age_ms, profile) = {
        let cache = node.cache();
        (
            u64::try_from(cache.len()).unwrap_or(u64::MAX),
            cache.used().as_bytes(),
            cache.capacity().as_bytes(),
            age_to_ms(node.expiration_age()),
            cache.profile(),
        )
    };
    w.key("occupancy");
    w.begin_object();
    w.key("docs");
    w.u64(docs);
    w.key("used_bytes");
    w.u64(used);
    w.key("capacity_bytes");
    w.u64(capacity);
    w.end_object();
    w.key("expiration_age_ms");
    w.opt_u64(age_ms);
    w.key("profile");
    write_profile_json(&mut w, profile);
    w.end_object();
    w.finish()
}

/// Writes the `profile` section of the stats document: `null` when the
/// workspace was built without the core `profile` feature, else one
/// object per hot-path op with call count and accumulated wall time.
fn write_profile_json(w: &mut JsonWriter, profile: Option<coopcache_core::ProfileSnapshot>) {
    let Some(p) = profile else {
        w.null();
        return;
    };
    w.begin_object();
    for op in coopcache_core::ProfileOp::ALL {
        let slot = p.op(op);
        w.key(op.name());
        w.begin_object();
        w.key("calls");
        w.u64(slot.calls);
        w.key("total_ns");
        w.u64(slot.total_ns);
        w.key("mean_ns");
        w.u64(slot.mean_ns());
        w.end_object();
    }
    w.end_object();
}

/// Takes one time-series sample of a daemon's live state: cumulative
/// event counters, the merged request-latency histogram, cache
/// occupancy, the live expiration age (paper eq. 5) and the number of
/// quarantined peers, stamped with the daemon clock.
fn sample_point(
    stats: &StatsRegistry,
    latency: &Mutex<BTreeMap<ServeSource, Histogram>>,
    health: &Mutex<BTreeMap<CacheId, PeerHealth>>,
    node: &ConcurrentNode,
    clock: &SharedClock,
) -> SeriesPoint {
    let mut counters = [0u64; coopcache_obs::EVENT_KINDS.len()];
    for (slot, (_, count)) in counters.iter_mut().zip(stats.snapshot()) {
        *slot = count;
    }
    let mut merged = Histogram::new();
    let (mut local_hits, mut remote_hits) = (0u64, 0u64);
    for (source, hist) in lock(latency).iter() {
        match source {
            ServeSource::Local => local_hits = local_hits.saturating_add(hist.count()),
            ServeSource::Peer(_) => remote_hits = remote_hits.saturating_add(hist.count()),
            ServeSource::Origin => {}
        }
        merged.merge(hist);
    }
    let snapshot = merged.snapshot();
    let now_us = clock.now_micros();
    let quarantined = lock(health)
        .values()
        .filter(|h| now_us < h.quarantined_until_us)
        .count();
    let (docs, used_bytes, capacity_bytes, expiration_age_ms) = {
        let cache = node.cache();
        (
            u64::try_from(cache.len()).unwrap_or(u64::MAX),
            cache.used().as_bytes(),
            cache.capacity().as_bytes(),
            age_to_ms(node.expiration_age()),
        )
    };
    SeriesPoint {
        t_ms: clock.now().as_millis(),
        counters,
        local_hits,
        remote_hits,
        latency: (snapshot.count > 0).then_some(snapshot),
        docs,
        used_bytes,
        capacity_bytes,
        expiration_age_ms,
        quarantined: u64::try_from(quarantined).unwrap_or(u64::MAX),
    }
}

/// Sampler thread body: pushes one [`SeriesPoint`] per interval into
/// the shared ring. The sleep is chunked so shutdown never blocks
/// behind a long interval.
fn sample_loop(ctx: &LoopCtx, interval: Duration) {
    // lint:allow(atomic-order) -- Acquire: pairs with the Release store
    // in `halt`, ordering the flag read before loop teardown.
    while !ctx.stop.load(Ordering::Acquire) {
        let mut remaining = interval;
        while !remaining.is_zero() {
            // lint:allow(atomic-order) -- Acquire: same pairing as above.
            if ctx.stop.load(Ordering::Acquire) {
                return;
            }
            let chunk = remaining.min(Duration::from_millis(5));
            std::thread::sleep(chunk);
            remaining = remaining.saturating_sub(chunk);
        }
        let point = sample_point(&ctx.stats, &ctx.latency, &ctx.health, &ctx.node, &ctx.clock);
        record_sample(point, &ctx.series, &ctx.alerts, |event| ctx.emit(event));
    }
}

/// Lands one sample: pushes the point into the `OP_SERIES` ring, runs
/// the SLO rules over it, and emits one [`Event::Alert`] per state
/// transition. The alert carries no timestamp of its own, so same-seed
/// workloads produce byte-identical alert streams even under the wall
/// clock.
fn record_sample(
    point: SeriesPoint,
    series: &Mutex<SeriesRing>,
    alerts: &Mutex<AlertEngine>,
    emit: impl Fn(&Event),
) {
    lock(series).push(point);
    for firing in lock(alerts).observe(&point) {
        emit(&Event::Alert {
            cache: firing.cache,
            metric: firing.metric,
            op: firing.op,
            threshold: firing.threshold,
            value: firing.value,
            windows: firing.windows,
            state: firing.state,
        });
    }
}
