//! Memory-pressure admission control for cacheable-store work.
//!
//! A daemon under memory pressure keeps *serving* — the protocol path
//! never blocks on admission — but sheds the optional work of storing an
//! origin-fetched copy, the same load-shedding posture production caches
//! take when the host is short on memory. Pressure is read from
//! `/proc/meminfo` (`MemAvailable` over `MemTotal`), behind a
//! test-injectable [`MemoryProbe`] so the shed path is exercisable
//! without actually exhausting the host.

use crate::clock::SharedClock;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// How the admission gate measures available memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryProbe {
    /// Read `MemAvailable` / `MemTotal` from `/proc/meminfo`. On any
    /// read or parse failure the gate fails open (stores are admitted):
    /// a broken probe must never turn the cache off.
    Meminfo,
    /// A fixed available-memory percentage — the test hook.
    Fixed(u8),
}

impl MemoryProbe {
    /// The current available-memory percentage (0–100), `None` when the
    /// probe cannot produce a reading.
    #[must_use]
    pub fn available_pct(self) -> Option<u64> {
        match self {
            Self::Meminfo => {
                let text = std::fs::read_to_string("/proc/meminfo").ok()?;
                parse_meminfo_pct(&text)
            }
            Self::Fixed(pct) => Some(u64::from(pct)),
        }
    }
}

/// Parses `/proc/meminfo` text into an available-memory percentage.
fn parse_meminfo_pct(text: &str) -> Option<u64> {
    let mut total_kb: Option<u64> = None;
    let mut available_kb: Option<u64> = None;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("MemTotal:") {
            total_kb = parse_kb(rest);
        } else if let Some(rest) = line.strip_prefix("MemAvailable:") {
            available_kb = parse_kb(rest);
        }
        if total_kb.is_some() && available_kb.is_some() {
            break;
        }
    }
    let total = total_kb?;
    if total == 0 {
        return None;
    }
    Some(available_kb?.saturating_mul(100) / total)
}

/// Parses the numeric field of a meminfo line (`"  131072000 kB"`).
fn parse_kb(rest: &str) -> Option<u64> {
    rest.split_whitespace().next()?.parse().ok()
}

/// The admission gate: sheds cacheable-store work while available
/// memory sits below a configured floor.
///
/// The probe reading is cached and refreshed at most once per
/// [`REFRESH_INTERVAL`] of daemon-clock time, so the request hot path
/// pays one relaxed atomic load per decision, not a `/proc` read.
#[derive(Debug)]
pub(crate) struct AdmissionGate {
    probe: MemoryProbe,
    min_available_pct: u8,
    /// Cached probe reading (percent); 100 until the first refresh.
    cached_pct: AtomicU64,
    /// Daemon-clock microsecond of the next allowed refresh.
    next_refresh_us: AtomicU64,
}

/// How long a probe reading is trusted before re-reading `/proc`.
const REFRESH_INTERVAL: Duration = Duration::from_millis(250);

impl AdmissionGate {
    pub(crate) fn new(probe: MemoryProbe, min_available_pct: u8) -> Self {
        Self {
            probe,
            min_available_pct,
            cached_pct: AtomicU64::new(100),
            next_refresh_us: AtomicU64::new(0),
        }
    }

    /// Whether a cacheable store should be admitted right now.
    ///
    /// `min_available_pct == 0` disables the gate entirely, which also
    /// keeps it off every deterministic replay path by default.
    pub(crate) fn allow_store(&self, clock: &SharedClock) -> bool {
        if self.min_available_pct == 0 {
            return true;
        }
        let now_us = clock.now_micros();
        if now_us >= self.next_refresh_us.load(Ordering::Relaxed) {
            let interval_us = u64::try_from(REFRESH_INTERVAL.as_micros()).unwrap_or(u64::MAX);
            self.next_refresh_us
                .store(now_us.saturating_add(interval_us), Ordering::Relaxed);
            // Fail open on a broken probe: admission control protects
            // the host, it must never silently disable the cache.
            let pct = self.probe.available_pct().unwrap_or(100);
            self.cached_pct.store(pct, Ordering::Relaxed);
        }
        self.cached_pct.load(Ordering::Relaxed) >= u64::from(self.min_available_pct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meminfo_parse_computes_available_percent() {
        let text = "MemTotal:       1000 kB\nMemFree:   100 kB\nMemAvailable:    250 kB\n";
        assert_eq!(parse_meminfo_pct(text), Some(25));
    }

    #[test]
    fn meminfo_parse_rejects_incomplete_or_zero_input() {
        assert_eq!(parse_meminfo_pct(""), None);
        assert_eq!(parse_meminfo_pct("MemTotal: 1000 kB\n"), None);
        assert_eq!(
            parse_meminfo_pct("MemTotal: x kB\nMemAvailable: 1 kB\n"),
            None
        );
        assert_eq!(
            parse_meminfo_pct("MemTotal: 0 kB\nMemAvailable: 0 kB\n"),
            None
        );
    }

    #[test]
    fn real_meminfo_probe_reads_a_sane_percentage() {
        // The test host runs Linux; the probe must produce a reading
        // inside [0, 100].
        let pct = MemoryProbe::Meminfo.available_pct();
        let pct = pct.expect("probe reads /proc/meminfo");
        assert!(pct <= 100, "available {pct}% out of range");
    }

    #[test]
    fn fixed_probe_gates_stores_and_zero_floor_disables() {
        let clock = SharedClock::start();
        let pressured = AdmissionGate::new(MemoryProbe::Fixed(3), 5);
        assert!(!pressured.allow_store(&clock), "3% available < 5% floor");
        let healthy = AdmissionGate::new(MemoryProbe::Fixed(80), 5);
        assert!(healthy.allow_store(&clock));
        let disabled = AdmissionGate::new(MemoryProbe::Fixed(0), 0);
        assert!(disabled.allow_store(&clock), "floor 0 disables the gate");
    }

    #[test]
    fn gate_caches_readings_between_refreshes() {
        let clock = SharedClock::start();
        let gate = AdmissionGate::new(MemoryProbe::Fixed(50), 5);
        assert!(gate.allow_store(&clock));
        // The cached percentage is now 50 and stays trusted for the
        // refresh interval regardless of repeated calls.
        for _ in 0..100 {
            assert!(gate.allow_store(&clock));
        }
        assert_eq!(gate.cached_pct.load(Ordering::Relaxed), 50);
    }
}
