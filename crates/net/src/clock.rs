//! Wall-clock to simulated-timestamp mapping for live daemons.

use coopcache_types::Timestamp;
use std::sync::Arc;
use std::time::Instant;

/// A shared epoch: all daemons in a cluster stamp cache events with
/// milliseconds elapsed since the cluster started, so expiration ages are
/// comparable across nodes (the paper assumes loosely synchronized proxy
/// clocks; a shared process epoch is the loopback equivalent).
#[derive(Debug, Clone)]
pub struct SharedClock {
    epoch: Arc<Instant>,
}

impl SharedClock {
    /// Starts a new clock at "now".
    #[must_use]
    pub fn start() -> Self {
        Self {
            epoch: Arc::new(Instant::now()),
        }
    }

    /// Milliseconds since the epoch, as a cache timestamp.
    #[must_use]
    pub fn now(&self) -> Timestamp {
        Timestamp::from_millis(self.epoch.elapsed().as_millis() as u64)
    }

    /// Microseconds since the epoch — the daemon's latency and deadline
    /// unit. All wall-clock reads in the workspace funnel through this
    /// type (enforced by `coopcache-lint`'s `wall-clock` rule), so the
    /// simulators can never accidentally observe real time.
    #[must_use]
    pub fn now_micros(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

impl Default for SharedClock {
    fn default() -> Self {
        Self::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn clock_is_monotonic_and_shared() {
        let clock = SharedClock::start();
        let twin = clock.clone();
        let a = clock.now();
        std::thread::sleep(Duration::from_millis(5));
        let b = twin.now();
        assert!(b > a, "{b} should be after {a}");
    }

    #[test]
    fn fresh_clock_starts_near_zero() {
        let clock = SharedClock::default();
        assert!(clock.now().as_millis() < 1_000);
    }
}
