//! A per-host pool of persistent peer/origin connections.
//!
//! The daemon's client side (peer fetches and origin fallback) checks
//! connections out of this pool instead of paying a fresh
//! `TcpStream::connect` per miss. Healthy connections are parked on
//! check-in and reused LIFO (the most recently parked connection is the
//! most likely to still be alive); parked connections past the idle
//! timeout are reaped lazily at the next checkout or check-in for their
//! host. Quarantining a peer discards its parked connections outright —
//! a quarantined peer's sockets are dead weight and reusing one after
//! recovery would mask the backoff window.
//!
//! Locking discipline: the single `pool_idle` mutex is held only for
//! `BTreeMap`/`Vec` bookkeeping. Connects happen before the guard is
//! taken and every drop of a reaped/evicted/discarded stream (which can
//! touch the kernel) happens after it is released, so the pool never
//! blocks under a lock (see the `lock-blocking` lint).

use crate::clock::SharedClock;
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Recovers the guard from a poisoned pool lock. Pool state is a plain
/// map of parked sockets — always valid — so a panicking peer thread
/// must not take the whole daemon down with it.
fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A parked connection and the daemon-clock microsecond it was parked.
#[derive(Debug)]
struct IdleConn {
    stream: TcpStream,
    parked_at_us: u64,
}

/// A checked-out connection, flagged with whether it came from the pool
/// (`reused`) or a fresh connect.
#[derive(Debug)]
pub(crate) struct Checkout {
    pub(crate) stream: TcpStream,
    pub(crate) reused: bool,
}

#[derive(Debug)]
pub(crate) struct ConnectionPool {
    /// Parked idle connections per remote host, newest last.
    pool_idle: Mutex<BTreeMap<SocketAddr, Vec<IdleConn>>>,
    /// Cap on parked connections per host; 0 disables pooling entirely.
    max_idle_per_host: usize,
    idle_timeout_us: u64,
}

impl ConnectionPool {
    pub(crate) fn new(max_idle_per_host: usize, idle_timeout: Duration) -> Self {
        Self {
            pool_idle: Mutex::new(BTreeMap::new()),
            max_idle_per_host,
            idle_timeout_us: u64::try_from(idle_timeout.as_micros()).unwrap_or(u64::MAX),
        }
    }

    /// Checks out a connection to `addr`: the most recently parked live
    /// connection when one exists, otherwise a fresh connect (made with
    /// no pool lock held).
    pub(crate) fn checkout(
        &self,
        addr: SocketAddr,
        connect_timeout: Duration,
        clock: &SharedClock,
    ) -> io::Result<Checkout> {
        let now_us = clock.now_micros();
        let (hit, stale) = {
            let mut idle = lock(&self.pool_idle);
            let mut hit = None;
            let mut stale = Vec::new();
            if let Some(parked) = idle.get_mut(&addr) {
                // Newest-first: parked order is by check-in time, so
                // once the newest survivor is found everything still
                // parked behind it is at least as old — but ages are
                // checked per connection anyway, which keeps the loop
                // correct even if clocks or check-ins interleave oddly.
                while let Some(conn) = parked.pop() {
                    if now_us.saturating_sub(conn.parked_at_us) <= self.idle_timeout_us {
                        hit = Some(conn.stream);
                        break;
                    }
                    stale.push(conn);
                }
                if parked.is_empty() {
                    idle.remove(&addr);
                }
            }
            (hit, stale)
        };
        drop(stale); // reaped sockets close outside the lock
        match hit {
            Some(stream) => Ok(Checkout {
                stream,
                reused: true,
            }),
            None => Ok(Checkout {
                stream: TcpStream::connect_timeout(&addr, connect_timeout)?,
                reused: false,
            }),
        }
    }

    /// Parks a healthy connection for reuse. When the per-host cap is
    /// exceeded the oldest parked connection is evicted (and closed
    /// outside the lock).
    pub(crate) fn checkin(&self, addr: SocketAddr, stream: TcpStream, clock: &SharedClock) {
        if self.max_idle_per_host == 0 {
            return; // pooling disabled: the stream drops (closes) here
        }
        let parked_at_us = clock.now_micros();
        let evicted = {
            let mut idle = lock(&self.pool_idle);
            let parked = idle.entry(addr).or_default();
            parked.push(IdleConn {
                stream,
                parked_at_us,
            });
            if parked.len() > self.max_idle_per_host {
                Some(parked.remove(0))
            } else {
                None
            }
        };
        drop(evicted); // evicted socket closes outside the lock
    }

    /// Discards every parked connection for `addr`, returning how many
    /// were dropped. Called when a peer is quarantined or a reused
    /// connection turns out stale.
    pub(crate) fn discard(&self, addr: SocketAddr) -> usize {
        let drained = { lock(&self.pool_idle).remove(&addr) };
        // Sockets close here, after the guard above is released.
        drained.map_or(0, |parked| parked.len())
    }

    /// Number of connections currently parked for `addr`.
    pub(crate) fn idle_count(&self, addr: SocketAddr) -> usize {
        lock(&self.pool_idle).get(&addr).map_or(0, Vec::len)
    }

    /// Total parked connections across all hosts.
    #[cfg(test)]
    pub(crate) fn idle_total(&self) -> usize {
        lock(&self.pool_idle).values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn listener() -> (TcpListener, SocketAddr) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        (listener, addr)
    }

    #[test]
    fn checkout_connects_fresh_then_reuses_checked_in_connection() {
        let (_listener, addr) = listener();
        let clock = SharedClock::start();
        let pool = ConnectionPool::new(4, Duration::from_secs(30));

        let first = pool
            .checkout(addr, Duration::from_secs(1), &clock)
            .expect("connect");
        assert!(!first.reused);
        pool.checkin(addr, first.stream, &clock);
        assert_eq!(pool.idle_count(addr), 1);

        let second = pool
            .checkout(addr, Duration::from_secs(1), &clock)
            .expect("reuse");
        assert!(second.reused, "parked connection is handed back out");
        assert_eq!(pool.idle_count(addr), 0);
    }

    #[test]
    fn per_host_cap_evicts_oldest_and_zero_cap_disables_pooling() {
        let (_listener, addr) = listener();
        let clock = SharedClock::start();
        let pool = ConnectionPool::new(2, Duration::from_secs(30));
        for _ in 0..3 {
            let conn = pool
                .checkout(addr, Duration::from_secs(1), &clock)
                .expect("connect");
            pool.checkin(addr, conn.stream, &clock);
        }
        // Third check-in of a distinct connection trips the cap of 2.
        let c1 = pool
            .checkout(addr, Duration::from_secs(1), &clock)
            .expect("a");
        let c2 = pool
            .checkout(addr, Duration::from_secs(1), &clock)
            .expect("b");
        pool.checkin(addr, c1.stream, &clock);
        pool.checkin(addr, c2.stream, &clock);
        assert_eq!(pool.idle_count(addr), 2);

        let disabled = ConnectionPool::new(0, Duration::from_secs(30));
        let conn = disabled
            .checkout(addr, Duration::from_secs(1), &clock)
            .expect("connect");
        disabled.checkin(addr, conn.stream, &clock);
        assert_eq!(disabled.idle_count(addr), 0, "cap 0 parks nothing");
    }

    #[test]
    fn stale_connections_are_reaped_at_checkout() {
        let (_listener, addr) = listener();
        let clock = SharedClock::start();
        let pool = ConnectionPool::new(4, Duration::ZERO); // everything is instantly stale
        let conn = pool
            .checkout(addr, Duration::from_secs(1), &clock)
            .expect("connect");
        pool.checkin(addr, conn.stream, &clock);
        std::thread::sleep(Duration::from_millis(2));
        let next = pool
            .checkout(addr, Duration::from_secs(1), &clock)
            .expect("connect");
        assert!(
            !next.reused,
            "stale parked connection was reaped, not reused"
        );
        assert_eq!(pool.idle_total(), 0);
    }

    #[test]
    fn discard_drops_every_parked_connection_for_the_host() {
        let (_listener, addr) = listener();
        let (_other_listener, other) = listener();
        let clock = SharedClock::start();
        let pool = ConnectionPool::new(4, Duration::from_secs(30));
        // Check out two distinct connections to `addr` before parking
        // either (sequential checkin would just reuse the first).
        let a1 = pool
            .checkout(addr, Duration::from_secs(1), &clock)
            .expect("a1");
        let a2 = pool
            .checkout(addr, Duration::from_secs(1), &clock)
            .expect("a2");
        pool.checkin(addr, a1.stream, &clock);
        pool.checkin(addr, a2.stream, &clock);
        let o = pool
            .checkout(other, Duration::from_secs(1), &clock)
            .expect("o");
        pool.checkin(other, o.stream, &clock);
        assert_eq!(pool.discard(addr), 2);
        assert_eq!(pool.idle_count(addr), 0);
        assert_eq!(pool.idle_count(other), 1, "other hosts are untouched");
        assert_eq!(pool.discard(addr), 0, "second discard finds nothing");
    }
}
