//! A stub origin web server for the live runtime.
//!
//! Serves any document on request, synthesizing a body of the requested
//! size, with an optional artificial service delay standing in for
//! wide-area distance (the paper measured ~2.8 s for a real miss in 2002).
//!
//! Connections are persistent: each accepted connection gets its own
//! thread that answers requests until the client closes or times out,
//! so the daemons' pooled origin connections amortize their connect
//! cost. Every accepted socket carries *both* a read and a write
//! timeout — a stalled reader that never drains its response can no
//! longer wedge the origin in `write_all` forever (such stalls are
//! counted in [`OriginServer::write_timeouts`]).

use crate::daemon::is_timeout;
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Recovers the guard from a poisoned lock (a panicked connection
/// thread must not wedge shutdown).
fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One request/response exchange on an already-connected origin
/// stream, leaving the connection healthy for reuse.
///
/// Wire format: request = `doc: u64, size: u64` (big-endian); response =
/// `size: u64` followed by `size` body bytes.
pub(crate) fn fetch_on_origin_conn(
    stream: &mut TcpStream,
    doc: u64,
    size: u64,
    timeout: Duration,
) -> io::Result<u64> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut req = [0u8; 16];
    req[..8].copy_from_slice(&doc.to_be_bytes());
    req[8..].copy_from_slice(&size.to_be_bytes());
    stream.write_all(&req)?;
    let mut header = [0u8; 8];
    stream.read_exact(&mut header)?;
    let body_len = u64::from_be_bytes(header);
    drain_body(stream, body_len)?;
    Ok(body_len)
}

/// Connects, performs one exchange, and drops the connection (tests and
/// one-shot callers; the daemons go through their pool instead).
#[cfg(test)]
pub(crate) fn fetch_from_origin(
    addr: SocketAddr,
    doc: u64,
    size: u64,
    timeout: Duration,
) -> io::Result<u64> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    fetch_on_origin_conn(&mut stream, doc, size, timeout)
}

/// Reads and discards exactly `len` body bytes.
pub(crate) fn drain_body<R: Read>(reader: &mut R, len: u64) -> io::Result<()> {
    let mut remaining = len;
    let mut chunk = [0u8; 8192];
    while remaining > 0 {
        let want = remaining.min(chunk.len() as u64) as usize;
        reader.read_exact(&mut chunk[..want])?;
        remaining -= want as u64;
    }
    Ok(())
}

/// Writes exactly `len` zero bytes as a synthetic document body.
pub(crate) fn write_body<W: Write>(writer: &mut W, len: u64) -> io::Result<()> {
    let chunk = [0u8; 8192];
    let mut remaining = len;
    while remaining > 0 {
        let want = remaining.min(chunk.len() as u64) as usize;
        writer.write_all(&chunk[..want])?;
        remaining -= want as u64;
    }
    Ok(())
}

/// State shared between the origin's accept loop, its per-connection
/// threads, and the server handle.
#[derive(Debug)]
struct OriginShared {
    served: AtomicU64,
    write_timeouts: AtomicU64,
    stop: AtomicBool,
    /// `try_clone`d handles of live connections, shut down at exit to
    /// unblock parked reads.
    conns: Mutex<BTreeMap<u64, TcpStream>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

/// A running stub origin server on a loopback TCP port.
///
/// # Example
///
/// ```no_run
/// use coopcache_net::OriginServer;
/// use std::time::Duration;
///
/// let origin = OriginServer::start(Duration::from_millis(5)).unwrap();
/// println!("origin at {}", origin.addr());
/// origin.shutdown();
/// ```
#[derive(Debug)]
pub struct OriginServer {
    addr: SocketAddr,
    shared: Arc<OriginShared>,
    handle: Option<JoinHandle<()>>,
}

impl OriginServer {
    /// Binds a loopback listener and starts serving with the given
    /// artificial per-request delay and a default 5 s I/O timeout.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn start(delay: Duration) -> io::Result<Self> {
        Self::start_with_timeout(delay, Duration::from_secs(5))
    }

    /// As [`OriginServer::start`], with an explicit per-connection I/O
    /// timeout (tests exercising stall handling want a short one).
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn start_with_timeout(delay: Duration, io_timeout: Duration) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(OriginShared {
            served: AtomicU64::new(0),
            write_timeouts: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            conns: Mutex::new(BTreeMap::new()),
            handles: Mutex::new(Vec::new()),
        });
        let handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("coopcache-origin".into())
                .spawn(move || accept_loop(&listener, delay, io_timeout, &shared))?
        };
        Ok(Self {
            addr,
            shared,
            handle: Some(handle),
        })
    }

    /// The address clients should fetch misses from.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of documents served so far (each is one group miss).
    #[must_use]
    pub fn served(&self) -> u64 {
        // lint:allow(atomic-order) -- SeqCst: pairs with the SeqCst
        // fetch_add in `serve_conn`; tests compare this against bytes
        // already received over TCP, so the count may never lag a
        // completed response.
        self.shared.served.load(Ordering::SeqCst)
    }

    /// Number of responses abandoned because the client stalled without
    /// draining them until the write timeout expired.
    #[must_use]
    pub fn write_timeouts(&self) -> u64 {
        self.shared.write_timeouts.load(Ordering::Relaxed)
    }

    /// Stops the listener and connection threads and waits for them.
    pub fn shutdown(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        // lint:allow(atomic-order) -- Release: pairs with the Acquire
        // load in `accept_loop`/`serve_conn`.
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connect.
        drop(TcpStream::connect_timeout(
            &self.addr,
            Duration::from_millis(500),
        ));
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        // Acceptor joined: no new connections can register. Unblock and
        // join the per-connection threads (teardown outside the locks).
        let drained: Vec<TcpStream> = {
            let mut conns = lock(&self.shared.conns);
            std::mem::take(&mut *conns).into_values().collect()
        };
        for stream in &drained {
            let _ = stream.shutdown(Shutdown::Both);
        }
        drop(drained);
        let handles: Vec<JoinHandle<()>> = {
            let mut handles = lock(&self.shared.handles);
            std::mem::take(&mut *handles)
        };
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for OriginServer {
    fn drop(&mut self) {
        // Best effort; `shutdown` is the clean path. The wake matters:
        // the acceptor blocks indefinitely and only re-checks the flag
        // once a connection arrives.
        // lint:allow(atomic-order) -- Release: same pairing as `halt`.
        self.shared.stop.store(true, Ordering::Release);
        if self.handle.is_some() {
            drop(TcpStream::connect_timeout(
                &self.addr,
                Duration::from_millis(500),
            ));
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    delay: Duration,
    io_timeout: Duration,
    shared: &Arc<OriginShared>,
) {
    let mut conn_seq = 0u64;
    // lint:allow(atomic-order) -- Acquire: pairs with the Release store
    // in `halt`/`drop`, ordering the flag read before loop exit.
    while !shared.stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // lint:allow(atomic-order) -- Acquire: same pairing; the
                // wake connection must not spawn a server thread.
                if shared.stop.load(Ordering::Acquire) {
                    break;
                }
                let id = conn_seq;
                conn_seq += 1;
                if let Ok(clone) = stream.try_clone() {
                    lock(&shared.conns).insert(id, clone);
                }
                let conn_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("coopcache-origin-{id}"))
                    .spawn(move || {
                        serve_conn(&stream, delay, io_timeout, &conn_shared);
                        lock(&conn_shared.conns).remove(&id);
                    });
                match spawned {
                    Ok(handle) => lock(&shared.handles).push(handle),
                    Err(_) => {
                        lock(&shared.conns).remove(&id);
                    }
                }
            }
            // Any other accept error is transient on loopback; keep the
            // origin alive — only shutdown exits.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

/// Serves one connection until the client closes, stalls past the I/O
/// timeout, or shutdown.
fn serve_conn(stream: &TcpStream, delay: Duration, io_timeout: Duration, shared: &OriginShared) {
    let mut stream = stream;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(io_timeout));
    let _ = stream.set_write_timeout(Some(io_timeout));
    loop {
        // lint:allow(atomic-order) -- Acquire: pairs with the Release
        // store in `halt`/`drop`.
        if shared.stop.load(Ordering::Acquire) {
            return;
        }
        let mut req = [0u8; 16];
        if stream.read_exact(&mut req).is_err() {
            return; // client closed or idled out; both end the connection
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let mut size_bytes = [0u8; 8];
        size_bytes.copy_from_slice(&req[8..]);
        let size = u64::from_be_bytes(size_bytes);
        // Count BEFORE replying: a client that has received the
        // whole body must observe the incremented counter.
        // lint:allow(atomic-order) -- SeqCst: pairs with the
        // SeqCst load in `served`; see that comment.
        shared.served.fetch_add(1, Ordering::SeqCst);
        let wrote = stream
            .write_all(&size.to_be_bytes())
            .and_then(|()| write_body(&mut stream, size));
        if let Err(e) = wrote {
            if is_timeout(&e) {
                // The client stalled without draining its response —
                // the bug class write timeouts exist for. The response
                // is abandoned and the connection dropped; the origin
                // itself keeps serving.
                shared.write_timeouts.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_serves_requested_size() {
        let origin = OriginServer::start(Duration::ZERO).unwrap();
        let got = fetch_from_origin(origin.addr(), 42, 10_000, Duration::from_secs(5)).unwrap();
        assert_eq!(got, 10_000);
        assert_eq!(origin.served(), 1);
        origin.shutdown();
    }

    #[test]
    fn origin_counts_multiple_fetches() {
        let origin = OriginServer::start(Duration::ZERO).unwrap();
        for doc in 0..5 {
            fetch_from_origin(origin.addr(), doc, 100, Duration::from_secs(5)).unwrap();
        }
        assert_eq!(origin.served(), 5);
        origin.shutdown();
    }

    #[test]
    fn zero_byte_document() {
        let origin = OriginServer::start(Duration::ZERO).unwrap();
        let got = fetch_from_origin(origin.addr(), 1, 0, Duration::from_secs(5)).unwrap();
        assert_eq!(got, 0);
        origin.shutdown();
    }

    #[test]
    fn persistent_connection_serves_many_requests() {
        let origin = OriginServer::start(Duration::ZERO).unwrap();
        let mut stream =
            TcpStream::connect_timeout(&origin.addr(), Duration::from_secs(5)).unwrap();
        for doc in 0..4 {
            let got = fetch_on_origin_conn(&mut stream, doc, 64, Duration::from_secs(5)).unwrap();
            assert_eq!(got, 64);
        }
        assert_eq!(origin.served(), 4, "four requests on one connection");
        origin.shutdown();
    }

    #[test]
    fn stalled_reader_times_out_without_wedging_the_origin() {
        // Regression for the missing-write-timeout bug: a peer that
        // requests a huge body and never reads it fills the kernel
        // buffers until the origin's `write_all` would block forever.
        // With a write timeout the origin abandons the response,
        // counts it, and keeps serving other clients.
        let origin =
            OriginServer::start_with_timeout(Duration::ZERO, Duration::from_millis(200)).unwrap();
        let mut stall = TcpStream::connect_timeout(&origin.addr(), Duration::from_secs(5)).unwrap();
        let mut req = [0u8; 16];
        req[..8].copy_from_slice(&7u64.to_be_bytes());
        req[8..].copy_from_slice(&64_000_000u64.to_be_bytes()); // far beyond socket buffers
        stall.write_all(&req).unwrap();
        // Deliberately never read. Wait (bounded) for the origin's
        // write to time out rather than sleeping a fixed interval.
        let clock = crate::clock::SharedClock::start();
        while origin.write_timeouts() == 0 && clock.now_micros() < 10_000_000 {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(origin.write_timeouts(), 1, "stall detected and abandoned");
        // The origin is not wedged: a healthy client is still served.
        let got = fetch_from_origin(origin.addr(), 8, 1000, Duration::from_secs(5)).unwrap();
        assert_eq!(got, 1000);
        drop(stall);
        origin.shutdown();
    }
}
