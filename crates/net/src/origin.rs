//! A stub origin web server for the live runtime.
//!
//! Serves any document on request, synthesizing a body of the requested
//! size, with an optional artificial service delay standing in for
//! wide-area distance (the paper measured ~2.8 s for a real miss in 2002).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Wire format: request = `doc: u64, size: u64` (big-endian); response =
/// `size: u64` followed by `size` body bytes.
pub(crate) fn fetch_from_origin(
    addr: SocketAddr,
    doc: u64,
    size: u64,
    timeout: Duration,
) -> io::Result<u64> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let mut req = [0u8; 16];
    req[..8].copy_from_slice(&doc.to_be_bytes());
    req[8..].copy_from_slice(&size.to_be_bytes());
    stream.write_all(&req)?;
    let mut header = [0u8; 8];
    stream.read_exact(&mut header)?;
    let body_len = u64::from_be_bytes(header);
    drain_body(&mut stream, body_len)?;
    Ok(body_len)
}

/// Reads and discards exactly `len` body bytes.
pub(crate) fn drain_body<R: Read>(reader: &mut R, len: u64) -> io::Result<()> {
    let mut remaining = len;
    let mut chunk = [0u8; 8192];
    while remaining > 0 {
        let want = remaining.min(chunk.len() as u64) as usize;
        reader.read_exact(&mut chunk[..want])?;
        remaining -= want as u64;
    }
    Ok(())
}

/// Writes exactly `len` zero bytes as a synthetic document body.
pub(crate) fn write_body<W: Write>(writer: &mut W, len: u64) -> io::Result<()> {
    let chunk = [0u8; 8192];
    let mut remaining = len;
    while remaining > 0 {
        let want = remaining.min(chunk.len() as u64) as usize;
        writer.write_all(&chunk[..want])?;
        remaining -= want as u64;
    }
    Ok(())
}

/// A running stub origin server on a loopback TCP port.
///
/// # Example
///
/// ```no_run
/// use coopcache_net::OriginServer;
/// use std::time::Duration;
///
/// let origin = OriginServer::start(Duration::from_millis(5)).unwrap();
/// println!("origin at {}", origin.addr());
/// origin.shutdown();
/// ```
#[derive(Debug)]
pub struct OriginServer {
    addr: SocketAddr,
    served: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl OriginServer {
    /// Binds a loopback listener and starts serving with the given
    /// artificial per-request delay.
    ///
    /// # Errors
    ///
    /// Propagates socket bind errors.
    pub fn start(delay: Duration) -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let served = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let served = Arc::clone(&served);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("coopcache-origin".into())
                .spawn(move || serve_loop(&listener, delay, &served, &stop))?
        };
        Ok(Self {
            addr,
            served,
            stop,
            handle: Some(handle),
        })
    }

    /// The address clients should fetch misses from.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of documents served so far (each is one group miss).
    #[must_use]
    pub fn served(&self) -> u64 {
        // lint:allow(atomic-order) -- SeqCst: pairs with the SeqCst
        // fetch_add in `serve_loop`; tests compare this against bytes
        // already received over TCP, so the count may never lag a
        // completed response.
        self.served.load(Ordering::SeqCst)
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(mut self) {
        // lint:allow(atomic-order) -- Release: pairs with the Acquire
        // load in `serve_loop`.
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for OriginServer {
    fn drop(&mut self) {
        // Non-blocking best effort; `shutdown` is the clean path.
        // lint:allow(atomic-order) -- Release: same pairing as `shutdown`.
        self.stop.store(true, Ordering::Release);
    }
}

fn serve_loop(listener: &TcpListener, delay: Duration, served: &AtomicU64, stop: &AtomicBool) {
    // lint:allow(atomic-order) -- Acquire: pairs with the Release store
    // in `shutdown`/`drop`, ordering the flag read before loop exit.
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_nodelay(true);
                let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                let mut req = [0u8; 16];
                if stream.read_exact(&mut req).is_err() {
                    continue;
                }
                let mut size_bytes = [0u8; 8];
                size_bytes.copy_from_slice(&req[8..]);
                let size = u64::from_be_bytes(size_bytes);
                // Count BEFORE replying: a client that has received the
                // whole body must observe the incremented counter.
                // lint:allow(atomic-order) -- SeqCst: pairs with the
                // SeqCst load in `served`; see that comment.
                served.fetch_add(1, Ordering::SeqCst);
                if stream.write_all(&size.to_be_bytes()).is_ok() {
                    let _ = write_body(&mut stream, size);
                }
            }
            // Any other accept error is transient on loopback; keep the
            // origin alive — only shutdown exits.
            Err(_) => {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_serves_requested_size() {
        let origin = OriginServer::start(Duration::ZERO).unwrap();
        let got = fetch_from_origin(origin.addr(), 42, 10_000, Duration::from_secs(5)).unwrap();
        assert_eq!(got, 10_000);
        assert_eq!(origin.served(), 1);
        origin.shutdown();
    }

    #[test]
    fn origin_counts_multiple_fetches() {
        let origin = OriginServer::start(Duration::ZERO).unwrap();
        for doc in 0..5 {
            fetch_from_origin(origin.addr(), doc, 100, Duration::from_secs(5)).unwrap();
        }
        assert_eq!(origin.served(), 5);
        origin.shutdown();
    }

    #[test]
    fn zero_byte_document() {
        let origin = OriginServer::start(Duration::ZERO).unwrap();
        let got = fetch_from_origin(origin.addr(), 1, 0, Duration::from_secs(5)).unwrap();
        assert_eq!(got, 0);
        origin.shutdown();
    }
}
