#![forbid(unsafe_code)]
//! Live cooperative caching over real sockets.
//!
//! The paper ran its simulator instances on several department machines,
//! "communicating via UDP and TCP for ICP and HTTP connections
//! respectively" (§4.1). This crate is that runtime, self-contained on
//! loopback: each [`CacheDaemon`] wraps the same I/O-free
//! [`coopcache_proxy::ProxyNode`] the simulators use, serving ICP over a
//! UDP socket and documents over TCP with the EA scheme's expiration ages
//! piggybacked in the binary wire format ([`WireMessage`]).
//!
//! [`LoopbackCluster`] assembles a whole group plus a stub
//! [`OriginServer`], so the full protocol — local lookup, ICP fan-out,
//! peer fetch, origin fallback — runs over genuine sockets with genuine
//! concurrency (including the doc-vanished-between-ICP-and-fetch race).
//!
//! Peer failures never surface to clients: the ICP wait collects every
//! positive replier, the fetch fails over through them (with bounded
//! retries) to the origin, and repeatedly failing peers are quarantined
//! with exponential backoff. A seeded [`FaultPlan`] injects dropped ICP
//! traffic, refused/reset connections and truncated bodies
//! deterministically for chaos testing (see `ClusterConfig::faults`).
//!
//! ```no_run
//! use coopcache_net::LoopbackCluster;
//! use coopcache_core::PlacementScheme;
//! use coopcache_types::{ByteSize, DocId};
//!
//! let cluster = LoopbackCluster::start(4, ByteSize::from_kb(64), PlacementScheme::Ea)?;
//! cluster.request(0, DocId::new(1), ByteSize::from_kb(4))?; // miss
//! let out = cluster.request(1, DocId::new(1), ByteSize::from_kb(4))?; // remote hit
//! assert!(out.is_remote_hit());
//! cluster.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

mod bench;
mod clock;
mod cluster;
mod daemon;
mod fault;
mod memory;
mod origin;
mod pool;
mod stats;
mod wire;

pub use bench::{run_daemon_bench, DaemonBenchConfig, DaemonBenchReport, EventsMode};
pub use clock::SharedClock;
pub use cluster::{ClusterConfig, LoopbackCluster};
pub use daemon::{BoundSockets, CacheDaemon, DaemonConfig, PeerAddr, ServeSource};
pub use fault::{FaultKind, FaultMode, FaultPlan, FaultRule};
pub use memory::MemoryProbe;
pub use origin::OriginServer;
pub use stats::{scrape_series, scrape_stats, MAX_STATS_BODY};
pub use wire::{DecodeError, WireMessage, FRAME_V2, MAGIC, MAX_FRAME_LEN};
