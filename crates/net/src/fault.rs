//! Deterministic fault injection for the live cluster.
//!
//! A [`FaultPlan`] is a seeded, cluster-wide schedule of per-daemon
//! misbehaviour: which daemon drops ICP traffic, delays replies, refuses
//! or resets document connections, or truncates bodies mid-transfer.
//! The plan is compiled per daemon into a [`FaultState`] that the server
//! loops consult at each injection point; a daemon without rules carries
//! no state at all, so production paths pay nothing when chaos is off.
//!
//! Determinism: probabilistic rules draw from a per-rule splitmix64
//! stream seeded from `(plan seed, daemon id, rule index)`. With a
//! single-threaded client driving the cluster, every daemon consults its
//! rules in the same order on every run, so a fixed seed reproduces the
//! same fault schedule exactly.

use coopcache_types::CacheId;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// What a fault does when it fires at the daemon it is attached to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Ignore an incoming ICP query (a lost request datagram).
    DropIcpQuery,
    /// Handle the query but never send the reply (a lost reply datagram).
    DropIcpReply,
    /// Delay the ICP reply by the given duration (a slow peer).
    DelayIcpReply(Duration),
    /// Accept a document connection and close it immediately, before
    /// reading the request — a peer that died between ICP and fetch.
    RefuseDoc,
    /// Read the document request, then drop the connection without
    /// replying — a peer that crashed mid-transfer.
    ResetDoc,
    /// Send the response header but only half the body, then close.
    TruncateDocBody,
}

impl FaultKind {
    /// True for the kinds consulted on the ICP (UDP) path.
    #[must_use]
    const fn is_icp(self) -> bool {
        matches!(
            self,
            Self::DropIcpQuery | Self::DropIcpReply | Self::DelayIcpReply(_)
        )
    }
}

/// How often a rule fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Every opportunity.
    Always,
    /// Only the first `n` opportunities.
    FirstN(u64),
    /// Every opportunity after the first `n`. Lets chaos target a
    /// *reused* connection: the first exchanges succeed (so the client
    /// parks the connection in its pool), later frames on it fault.
    AfterFirstN(u64),
    /// Each opportunity fires with `pct`% probability, drawn from the
    /// plan's seeded PRNG (deterministic for a fixed seed).
    Probability(u8),
}

/// One rule: daemon `at` misbehaves in the given way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRule {
    /// The daemon the fault is injected at.
    pub at: CacheId,
    /// What happens.
    pub kind: FaultKind,
    /// How often.
    pub mode: FaultMode,
}

/// A seeded, cluster-wide fault schedule. An empty plan (the default)
/// injects nothing anywhere.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given PRNG seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    #[must_use]
    pub fn rule(mut self, at: CacheId, kind: FaultKind, mode: FaultMode) -> Self {
        self.rules.push(FaultRule { at, kind, mode });
        self
    }

    /// True when the plan injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Compiles the rules targeting daemon `at`, or `None` when the
    /// daemon is fault-free (so its loops skip the checks entirely).
    #[must_use]
    pub(crate) fn compile(&self, at: CacheId) -> Option<FaultState> {
        let armed: Vec<ArmedRule> = self
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| r.at == at)
            .map(|(index, r)| ArmedRule {
                kind: r.kind,
                mode: r.mode,
                fired: 0,
                seen: 0,
                rng: SplitMix64::new(
                    self.seed
                        ^ (u64::from(at.as_u16()) << 32)
                        ^ (index as u64).wrapping_mul(0x9E37),
                ),
            })
            .collect();
        if armed.is_empty() {
            None
        } else {
            Some(FaultState {
                rules: Mutex::new(armed),
            })
        }
    }
}

/// The decision for one incoming ICP query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum IcpFault {
    /// Behave normally.
    None,
    /// Drop the query unprocessed.
    DropQuery,
    /// Process the query but drop the reply.
    DropReply,
    /// Sleep before sending the reply.
    DelayReply(Duration),
}

/// The decision for one accepted document connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DocFault {
    /// Behave normally.
    None,
    /// Close before reading the request.
    Refuse,
    /// Read the request, then close without replying.
    Reset,
    /// Reply, but send only half the body.
    Truncate,
}

/// One compiled rule plus its firing state.
#[derive(Debug)]
struct ArmedRule {
    kind: FaultKind,
    mode: FaultMode,
    fired: u64,
    seen: u64,
    rng: SplitMix64,
}

impl ArmedRule {
    /// Consults the mode (advancing counters/PRNG) and reports firing.
    fn fires(&mut self) -> bool {
        let past = self.seen;
        self.seen += 1;
        let fire = match self.mode {
            FaultMode::Always => true,
            FaultMode::FirstN(n) => self.fired < n,
            FaultMode::AfterFirstN(n) => past >= n,
            FaultMode::Probability(pct) => self.rng.next() % 100 < u64::from(pct.min(100)),
        };
        if fire {
            self.fired += 1;
        }
        fire
    }
}

/// The per-daemon compiled view of a [`FaultPlan`], shared with the
/// daemon's server threads.
#[derive(Debug)]
pub(crate) struct FaultState {
    rules: Mutex<Vec<ArmedRule>>,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl FaultState {
    /// The fault (if any) to apply to the next incoming ICP query. The
    /// first firing ICP rule wins.
    pub(crate) fn icp_fault(&self) -> IcpFault {
        for rule in lock(&self.rules).iter_mut().filter(|r| r.kind.is_icp()) {
            if rule.fires() {
                return match rule.kind {
                    FaultKind::DropIcpQuery => IcpFault::DropQuery,
                    FaultKind::DropIcpReply => IcpFault::DropReply,
                    FaultKind::DelayIcpReply(d) => IcpFault::DelayReply(d),
                    _ => IcpFault::None,
                };
            }
        }
        IcpFault::None
    }

    /// The fault (if any) to apply to the next accepted document
    /// connection. The first firing document rule wins.
    pub(crate) fn doc_fault(&self) -> DocFault {
        for rule in lock(&self.rules).iter_mut().filter(|r| !r.kind.is_icp()) {
            if rule.fires() {
                return match rule.kind {
                    FaultKind::RefuseDoc => DocFault::Refuse,
                    FaultKind::ResetDoc => DocFault::Reset,
                    FaultKind::TruncateDocBody => DocFault::Truncate,
                    _ => DocFault::None,
                };
            }
        }
        DocFault::None
    }
}

/// Sebastiano Vigna's splitmix64 — tiny, seedable, and plenty for fault
/// scheduling (the workspace is dependency-free by construction).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u16) -> CacheId {
        CacheId::new(i)
    }

    #[test]
    fn empty_plan_compiles_to_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.compile(c(0)).is_none());
    }

    #[test]
    fn rules_only_arm_their_target_daemon() {
        let plan = FaultPlan::seeded(1).rule(c(1), FaultKind::RefuseDoc, FaultMode::Always);
        assert!(plan.compile(c(0)).is_none());
        let state = plan.compile(c(1)).unwrap();
        assert_eq!(state.doc_fault(), DocFault::Refuse);
        assert_eq!(state.icp_fault(), IcpFault::None);
    }

    #[test]
    fn first_n_fires_exactly_n_times() {
        let plan = FaultPlan::seeded(1).rule(c(0), FaultKind::DropIcpQuery, FaultMode::FirstN(2));
        let state = plan.compile(c(0)).unwrap();
        assert_eq!(state.icp_fault(), IcpFault::DropQuery);
        assert_eq!(state.icp_fault(), IcpFault::DropQuery);
        assert_eq!(state.icp_fault(), IcpFault::None);
    }

    #[test]
    fn after_first_n_skips_then_always_fires() {
        let plan = FaultPlan::seeded(1).rule(c(0), FaultKind::ResetDoc, FaultMode::AfterFirstN(2));
        let state = plan.compile(c(0)).unwrap();
        assert_eq!(state.doc_fault(), DocFault::None);
        assert_eq!(state.doc_fault(), DocFault::None);
        assert_eq!(state.doc_fault(), DocFault::Reset);
        assert_eq!(state.doc_fault(), DocFault::Reset);
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<bool> {
            let plan =
                FaultPlan::seeded(seed).rule(c(0), FaultKind::ResetDoc, FaultMode::Probability(50));
            let state = plan.compile(c(0)).unwrap();
            (0..64)
                .map(|_| state.doc_fault() == DocFault::Reset)
                .collect()
        };
        assert_eq!(draw(7), draw(7), "same seed, same schedule");
        assert_ne!(draw(7), draw(8), "different seed, different schedule");
        let fires = draw(7).iter().filter(|&&b| b).count();
        assert!((10..=54).contains(&fires), "~50% of 64, got {fires}");
    }

    #[test]
    fn icp_and_doc_rules_do_not_cross_paths() {
        let plan = FaultPlan::seeded(3)
            .rule(
                c(0),
                FaultKind::DelayIcpReply(Duration::from_millis(5)),
                FaultMode::Always,
            )
            .rule(c(0), FaultKind::TruncateDocBody, FaultMode::Always);
        let state = plan.compile(c(0)).unwrap();
        assert_eq!(
            state.icp_fault(),
            IcpFault::DelayReply(Duration::from_millis(5))
        );
        assert_eq!(state.doc_fault(), DocFault::Truncate);
    }

    #[test]
    fn probability_pct_is_capped_at_100() {
        let plan =
            FaultPlan::seeded(9).rule(c(0), FaultKind::RefuseDoc, FaultMode::Probability(255));
        let state = plan.compile(c(0)).unwrap();
        for _ in 0..16 {
            assert_eq!(state.doc_fault(), DocFault::Refuse);
        }
    }
}
