//! A whole cooperative cache group on loopback sockets.

use crate::clock::SharedClock;
use crate::daemon::{BoundSockets, CacheDaemon, DaemonConfig, PeerAddr};
use crate::fault::FaultPlan;
use crate::origin::OriginServer;
use coopcache_core::PlacementScheme;
use coopcache_obs::{AlertRule, SinkHandle};
use coopcache_proxy::RequestOutcome;
use coopcache_types::{ByteSize, CacheId, DocId};
use std::io;
use std::time::Duration;

/// Everything needed to start a [`LoopbackCluster`], including the
/// optional chaos schedule. The plain starters cover the common cases;
/// this covers the rest.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of cache daemons.
    pub caches: u16,
    /// Capacity of each cache.
    pub per_cache_capacity: ByteSize,
    /// Placement scheme.
    pub scheme: PlacementScheme,
    /// Artificial origin service delay.
    pub origin_delay: Duration,
    /// ICP reply deadline per request.
    pub icp_timeout: Duration,
    /// Per-connection I/O timeout.
    pub io_timeout: Duration,
    /// Consecutive peer failures before quarantine (0 disables it).
    pub quarantine_after: u32,
    /// First quarantine duration; doubles per re-quarantine.
    pub quarantine_base: Duration,
    /// Seeded fault schedule (empty = no injection anywhere).
    pub faults: FaultPlan,
    /// Metrics sampling interval for every daemon (`None` = on-demand
    /// sampling only; see `DaemonConfig::sample_interval`).
    pub sample_interval: Option<Duration>,
    /// Shards per cache (power of two; see `DaemonConfig::shards`).
    pub shards: usize,
    /// Idle pooled connections kept per remote host (0 disables pooling;
    /// see `DaemonConfig::pool_max_idle`).
    pub pool_max_idle: usize,
    /// How long an idle pooled connection may sit before reaping.
    pub pool_idle_timeout: Duration,
    /// Concurrent inbound document connections per daemon.
    pub max_conns: usize,
    /// Where the admission gate reads available memory from.
    pub memory_probe: crate::MemoryProbe,
    /// Minimum available-memory percentage to admit origin stores
    /// (0 disables admission control).
    pub min_available_pct: u8,
    /// SLO rules installed on every daemon (see `DaemonConfig::alerts`).
    pub alerts: Vec<AlertRule>,
}

impl ClusterConfig {
    /// A fault-free cluster with the default daemon timeouts.
    #[must_use]
    pub fn new(caches: u16, per_cache_capacity: ByteSize, scheme: PlacementScheme) -> Self {
        let defaults = DaemonConfig::loopback(CacheId::new(0), per_cache_capacity, scheme);
        Self {
            caches,
            per_cache_capacity,
            scheme,
            origin_delay: Duration::ZERO,
            icp_timeout: defaults.icp_timeout,
            io_timeout: defaults.io_timeout,
            quarantine_after: defaults.quarantine_after,
            quarantine_base: defaults.quarantine_base,
            faults: FaultPlan::default(),
            sample_interval: None,
            shards: defaults.shards,
            pool_max_idle: defaults.pool_max_idle,
            pool_idle_timeout: defaults.pool_idle_timeout,
            max_conns: defaults.max_conns,
            memory_probe: defaults.memory_probe,
            min_available_pct: defaults.min_available_pct,
            alerts: Vec::new(),
        }
    }

    /// Sets the shard count of every cache (builder style).
    ///
    /// # Panics
    ///
    /// Panics (at daemon start) unless `n` is a power of two.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Sets the artificial origin delay (builder style).
    #[must_use]
    pub fn origin_delay(mut self, delay: Duration) -> Self {
        self.origin_delay = delay;
        self
    }

    /// Sets the ICP reply deadline (builder style).
    #[must_use]
    pub fn icp_timeout(mut self, timeout: Duration) -> Self {
        self.icp_timeout = timeout;
        self
    }

    /// Sets the per-connection I/O timeout (builder style).
    #[must_use]
    pub fn io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// Sets the quarantine threshold, 0 to disable (builder style).
    #[must_use]
    pub fn quarantine_after(mut self, failures: u32) -> Self {
        self.quarantine_after = failures;
        self
    }

    /// Sets the initial quarantine backoff (builder style).
    #[must_use]
    pub fn quarantine_base(mut self, base: Duration) -> Self {
        self.quarantine_base = base;
        self
    }

    /// Installs a fault schedule (builder style).
    #[must_use]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the metrics sampling interval (builder style).
    #[must_use]
    pub fn sample_interval(mut self, interval: Duration) -> Self {
        self.sample_interval = Some(interval);
        self
    }

    /// Sets the per-host idle-connection cap, 0 to disable pooling
    /// (builder style).
    #[must_use]
    pub fn pool_max_idle(mut self, n: usize) -> Self {
        self.pool_max_idle = n;
        self
    }

    /// Sets the idle reaping deadline for pooled connections (builder
    /// style).
    #[must_use]
    pub fn pool_idle_timeout(mut self, timeout: Duration) -> Self {
        self.pool_idle_timeout = timeout;
        self
    }

    /// Sets the inbound connection cap per daemon (builder style).
    #[must_use]
    pub fn max_conns(mut self, n: usize) -> Self {
        self.max_conns = n;
        self
    }

    /// Installs a memory probe for admission control (builder style).
    #[must_use]
    pub fn memory_probe(mut self, probe: crate::MemoryProbe) -> Self {
        self.memory_probe = probe;
        self
    }

    /// Sets the admission floor as available-memory percent, 0 to
    /// disable shedding (builder style).
    #[must_use]
    pub fn min_available_pct(mut self, pct: u8) -> Self {
        self.min_available_pct = pct;
        self
    }

    /// Installs SLO rules on every daemon (builder style).
    #[must_use]
    pub fn alerts(mut self, rules: Vec<AlertRule>) -> Self {
        self.alerts = rules;
        self
    }
}

/// A running group of cache daemons plus a stub origin server, all on
/// 127.0.0.1 — the live-network counterpart of
/// `coopcache_proxy::DistributedGroup`.
///
/// # Example
///
/// ```no_run
/// use coopcache_net::LoopbackCluster;
/// use coopcache_core::PlacementScheme;
/// use coopcache_types::{ByteSize, DocId};
///
/// let cluster = LoopbackCluster::start(
///     3, ByteSize::from_kb(64), PlacementScheme::Ea).unwrap();
/// let out = cluster.request(0, DocId::new(1), ByteSize::from_kb(4)).unwrap();
/// assert!(!out.is_hit()); // cold cluster: compulsory miss
/// cluster.shutdown();
/// ```
#[derive(Debug)]
pub struct LoopbackCluster {
    daemons: Vec<CacheDaemon>,
    origin: OriginServer,
}

impl LoopbackCluster {
    /// Starts `n` daemons of `per_cache_capacity` each and an origin stub
    /// with no artificial delay.
    ///
    /// # Errors
    ///
    /// Propagates socket and thread-spawn failures.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn start(
        n: u16,
        per_cache_capacity: ByteSize,
        scheme: PlacementScheme,
    ) -> io::Result<Self> {
        Self::start_with_origin_delay(n, per_cache_capacity, scheme, Duration::ZERO)
    }

    /// Like [`start`](Self::start) with an artificial origin delay, to
    /// make miss latency visibly dominate (as in the paper's 2784 ms).
    ///
    /// # Errors
    ///
    /// Propagates socket and thread-spawn failures.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn start_with_origin_delay(
        n: u16,
        per_cache_capacity: ByteSize,
        scheme: PlacementScheme,
        origin_delay: Duration,
    ) -> io::Result<Self> {
        Self::start_with_config(
            ClusterConfig::new(n, per_cache_capacity, scheme).origin_delay(origin_delay),
        )
    }

    /// Starts a cluster from a full [`ClusterConfig`] — the only way to
    /// attach a [`FaultPlan`] or tune the protocol timeouts.
    ///
    /// # Errors
    ///
    /// Propagates socket and thread-spawn failures.
    ///
    /// # Panics
    ///
    /// Panics if `config.caches` is zero.
    pub fn start_with_config(config: ClusterConfig) -> io::Result<Self> {
        let n = config.caches;
        assert!(n > 0, "a cluster needs at least one cache");
        let origin = OriginServer::start(config.origin_delay)?;
        let clock = SharedClock::start();

        // Two-phase start: bind every socket first so the full peer table
        // exists before any daemon begins serving.
        let sockets: Vec<BoundSockets> = (0..n)
            .map(|_| BoundSockets::bind_loopback())
            .collect::<io::Result<_>>()?;
        let addrs: Vec<PeerAddr> = sockets
            .iter()
            .enumerate()
            .map(|(i, s)| PeerAddr {
                id: CacheId::new(i as u16),
                icp: s.icp_addr,
                doc: s.doc_addr,
            })
            .collect();

        let mut daemons = Vec::with_capacity(usize::from(n));
        for (i, socket) in sockets.into_iter().enumerate() {
            let id = CacheId::new(i as u16);
            let peers: Vec<PeerAddr> = addrs.iter().copied().filter(|p| p.id != id).collect();
            let mut daemon_config =
                DaemonConfig::loopback(id, config.per_cache_capacity, config.scheme);
            daemon_config.icp_timeout = config.icp_timeout;
            daemon_config.io_timeout = config.io_timeout;
            daemon_config.quarantine_after = config.quarantine_after;
            daemon_config.quarantine_base = config.quarantine_base;
            daemon_config.sample_interval = config.sample_interval;
            daemon_config.shards = config.shards;
            daemon_config.pool_max_idle = config.pool_max_idle;
            daemon_config.pool_idle_timeout = config.pool_idle_timeout;
            daemon_config.max_conns = config.max_conns;
            daemon_config.memory_probe = config.memory_probe;
            daemon_config.min_available_pct = config.min_available_pct;
            daemon_config.alerts = config.alerts.clone();
            daemons.push(CacheDaemon::start_with_faults(
                daemon_config,
                socket,
                peers,
                origin.addr(),
                clock.clone(),
                config.faults.compile(id),
            )?);
        }
        Ok(Self { daemons, origin })
    }

    /// Installs a shared event sink into every daemon: each emits
    /// `Request` events with measured wall-clock latency, plus the
    /// placement/eviction events of its inner node.
    pub fn set_sink(&mut self, sink: SinkHandle) {
        for daemon in &mut self.daemons {
            daemon.set_sink(sink.clone());
        }
    }

    /// Number of caches in the cluster.
    #[must_use]
    pub fn len(&self) -> usize {
        self.daemons.len()
    }

    /// True when the cluster has no daemons (not constructible).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.daemons.is_empty()
    }

    /// Issues a client request at cache `idx`, end-to-end over sockets.
    ///
    /// # Errors
    ///
    /// Propagates network failures.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn request(&self, idx: usize, doc: DocId, size: ByteSize) -> io::Result<RequestOutcome> {
        self.daemons[idx].request(doc, size)
    }

    /// The daemon at `idx`, for inspection.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn daemon(&self, idx: usize) -> &CacheDaemon {
        &self.daemons[idx]
    }

    /// Every daemon's document (TCP) endpoint, in cache-id order — the
    /// addresses `scrape_stats` pulls `OP_STATS` snapshots from.
    #[must_use]
    pub fn doc_addrs(&self) -> Vec<std::net::SocketAddr> {
        self.daemons.iter().map(CacheDaemon::doc_addr).collect()
    }

    /// Kills the daemon at `idx` mid-run: its server threads stop and
    /// its sockets close, so peers see ICP silence and refused document
    /// connections. The daemon handle stays inspectable; requests to a
    /// killed daemon still work (its client side needs no listeners).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn kill(&mut self, idx: usize) {
        self.daemons[idx].halt();
    }

    /// Total documents the origin served (= group misses observed).
    #[must_use]
    pub fn origin_fetches(&self) -> u64 {
        self.origin.served()
    }

    /// Stops every daemon and the origin, waiting for their threads.
    pub fn shutdown(self) {
        for daemon in self.daemons {
            daemon.shutdown();
        }
        self.origin.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    fn d(i: u64) -> DocId {
        DocId::new(i)
    }

    #[test]
    fn miss_then_local_then_remote() {
        let cluster = LoopbackCluster::start(3, kb(64), PlacementScheme::AdHoc).unwrap();
        // Cold: miss at cache 0, stored.
        let out = cluster.request(0, d(1), kb(4)).unwrap();
        assert!(
            matches!(
                out,
                RequestOutcome::Miss {
                    stored_locally: true,
                    ..
                }
            ),
            "{out:?}"
        );
        // Warm: local hit at cache 0.
        let out = cluster.request(0, d(1), kb(4)).unwrap();
        assert_eq!(out, RequestOutcome::LocalHit);
        // Cross: remote hit from cache 1, served by cache 0.
        let out = cluster.request(1, d(1), kb(4)).unwrap();
        match out {
            RequestOutcome::RemoteHit {
                responder,
                stored_locally,
                ..
            } => {
                assert_eq!(responder, CacheId::new(0));
                assert!(stored_locally, "ad-hoc replicates");
            }
            other => panic!("expected remote hit, got {other:?}"),
        }
        assert_eq!(cluster.origin_fetches(), 1);
        cluster.shutdown();
    }

    #[test]
    fn op_stats_scrape_matches_local_snapshot() {
        let cluster = LoopbackCluster::start(2, kb(64), PlacementScheme::Ea).unwrap();
        cluster.request(0, d(3), kb(4)).unwrap(); // miss, stored
        cluster.request(1, d(3), kb(4)).unwrap(); // remote hit from 0
        let addrs = cluster.doc_addrs();
        assert_eq!(addrs.len(), 2);
        let timeout = Duration::from_secs(2);
        for (idx, addr) in addrs.iter().enumerate() {
            let body = crate::scrape_stats(*addr, timeout).unwrap();
            // The scrape is the daemon's own snapshot, byte for byte.
            assert_eq!(body, cluster.daemon(idx).stats_json());
            let doc = coopcache_obs::parse_json(&body).unwrap();
            assert_eq!(
                doc.get("cache").and_then(coopcache_obs::JsonValue::as_u64),
                Some(idx as u64)
            );
            let counters = doc.get("counters").unwrap();
            assert_eq!(
                counters
                    .get("request")
                    .and_then(coopcache_obs::JsonValue::as_u64),
                Some(1),
                "each daemon served one client request"
            );
            assert!(
                counters
                    .get("span")
                    .and_then(coopcache_obs::JsonValue::as_u64)
                    .unwrap()
                    > 0,
                "spans are counted with no sink installed"
            );
        }
        // The requester's snapshot shows where its request was served.
        let body = crate::scrape_stats(addrs[1], timeout).unwrap();
        assert!(body.contains("\"peer:0\""), "{body}");
        cluster.shutdown();
    }

    #[test]
    fn ea_tie_does_not_replicate_over_the_wire() {
        let cluster = LoopbackCluster::start(2, kb(64), PlacementScheme::Ea).unwrap();
        cluster.request(0, d(7), kb(4)).unwrap();
        let out = cluster.request(1, d(7), kb(4)).unwrap();
        match out {
            RequestOutcome::RemoteHit {
                stored_locally,
                promoted_at_responder,
                ..
            } => {
                assert!(!stored_locally, "infinite-age tie must not store");
                assert!(promoted_at_responder);
            }
            other => panic!("expected remote hit, got {other:?}"),
        }
        assert!(cluster.daemon(0).with_node(|n| n.cache().contains(d(7))));
        assert!(!cluster.daemon(1).with_node(|n| n.cache().contains(d(7))));
        // And the next request from cache 1 is again a remote hit.
        let again = cluster.request(1, d(7), kb(4)).unwrap();
        assert!(again.is_remote_hit(), "{again:?}");
        assert_eq!(cluster.origin_fetches(), 1);
        cluster.shutdown();
    }

    #[test]
    fn concurrent_requests_from_all_caches() {
        let cluster =
            std::sync::Arc::new(LoopbackCluster::start(4, kb(256), PlacementScheme::Ea).unwrap());
        let mut handles = Vec::new();
        for idx in 0..4 {
            let cluster = std::sync::Arc::clone(&cluster);
            handles.push(std::thread::spawn(move || {
                for i in 0..25u64 {
                    // Overlapping doc sets force cross-cache traffic.
                    let doc = d(i % 10);
                    cluster.request(idx, doc, kb(2)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total_lookups: u64 = (0..4)
            .map(|i| cluster.daemon(i).with_node(|n| n.cache().stats().lookups()))
            .sum();
        assert_eq!(total_lookups, 100);
        // Every distinct doc reached the origin at least once and at most
        // a handful of times (races may duplicate a fetch, never lose one).
        assert!(cluster.origin_fetches() >= 10);
        assert!(
            cluster.origin_fetches() <= 40,
            "{}",
            cluster.origin_fetches()
        );
        match std::sync::Arc::try_unwrap(cluster) {
            Ok(cluster) => cluster.shutdown(),
            Err(_) => panic!("all threads joined, Arc must be unique"),
        }
    }

    #[test]
    fn sharded_cluster_serves_concurrent_requests() {
        let config = ClusterConfig::new(2, kb(256), PlacementScheme::Ea).shards(4);
        let cluster = std::sync::Arc::new(LoopbackCluster::start_with_config(config).unwrap());
        let mut handles = Vec::new();
        for idx in 0..2 {
            let cluster = std::sync::Arc::clone(&cluster);
            handles.push(std::thread::spawn(move || {
                for i in 0..30u64 {
                    cluster.request(idx, d(i % 12), kb(2)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..2 {
            cluster.daemon(i).with_node(|n| {
                assert_eq!(n.cache().shard_count(), 4);
                n.cache().check_invariants().expect("shard invariants hold");
                // The per-shard locks were exercised by the server threads.
                assert!(n.cache().contention().acquisitions > 0);
            });
        }
        let total_lookups: u64 = (0..2)
            .map(|i| cluster.daemon(i).with_node(|n| n.cache().stats().lookups()))
            .sum();
        assert_eq!(total_lookups, 60);
        match std::sync::Arc::try_unwrap(cluster) {
            Ok(cluster) => cluster.shutdown(),
            Err(_) => panic!("all threads joined, Arc must be unique"),
        }
    }

    #[test]
    fn sink_sees_wire_requests_and_latency_is_recorded() {
        use crate::daemon::ServeSource;
        use coopcache_obs::{EventKind, HistogramSink, RequestClass, RingBufferSink, SinkHandle};
        use std::sync::{Arc, Mutex};
        let mut cluster = LoopbackCluster::start(2, kb(64), PlacementScheme::Ea).unwrap();
        let sink = Arc::new(Mutex::new(HistogramSink::new()));
        cluster.set_sink(SinkHandle::from_arc(Arc::clone(&sink)));
        cluster.request(0, d(1), kb(4)).unwrap(); // miss
        cluster.request(0, d(1), kb(4)).unwrap(); // local hit
        cluster.request(1, d(1), kb(4)).unwrap(); // remote hit
        {
            let agg = sink.lock().unwrap();
            assert_eq!(agg.count(EventKind::Request), 3);
            assert_eq!(agg.request_split(), (1, 1, 1));
            // Every wire request carries a measured wall-clock latency.
            assert_eq!(agg.request_latency_us.count(), 3);
        }
        // Per-source histograms on the daemons agree with the outcomes.
        let at0: Vec<ServeSource> = cluster
            .daemon(0)
            .latency_snapshots()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(at0, vec![ServeSource::Local, ServeSource::Origin]);
        let at1 = cluster.daemon(1).latency_snapshots();
        assert_eq!(at1.len(), 1);
        assert!(matches!(at1[0].0, ServeSource::Peer(id) if id == CacheId::new(0)));
        assert_eq!(at1[0].1.count, 1);
        // A ring sink on one daemon records the event sequence verbatim.
        let ring = Arc::new(Mutex::new(RingBufferSink::new(16)));
        cluster.set_sink(SinkHandle::from_arc(Arc::clone(&ring)));
        cluster.request(1, d(1), kb(4)).unwrap(); // remote hit again
        {
            // Server threads emit trailing spans after the client's read
            // returns, so this guard must drop before `shutdown` joins
            // them — an emit blocked on it would deadlock the join.
            let ring = ring.lock().unwrap();
            let requests: Vec<_> = ring
                .events()
                .filter(|e| e.kind() == EventKind::Request)
                .collect();
            assert_eq!(requests.len(), 1);
            match requests[0] {
                coopcache_obs::Event::Request {
                    class, latency_us, ..
                } => {
                    assert_eq!(*class, RequestClass::RemoteHit);
                    assert!(latency_us.is_some());
                }
                other => panic!("expected request event, got {other:?}"),
            }
        }
        cluster.shutdown();
    }

    #[test]
    fn full_group_eviction_pressure_over_wire() {
        // Tiny caches: force evictions and check ages turn finite.
        let cluster = LoopbackCluster::start(2, kb(8), PlacementScheme::Ea).unwrap();
        for i in 0..20 {
            cluster.request(0, d(i), kb(4)).unwrap();
        }
        let age = cluster.daemon(0).with_node(|n| n.expiration_age());
        assert!(!age.is_infinite(), "churned cache should have finite age");
        cluster.shutdown();
    }
}
