//! Client side of the `OP_STATS`/`OP_SERIES` live observability plane.
//!
//! Any daemon's document (TCP) endpoint answers a [`WireMessage::StatsRequest`]
//! with a [`WireMessage::StatsResponse`] header frame followed by a raw
//! JSON body — the same deterministic document
//! [`CacheDaemon::stats_json`](crate::CacheDaemon::stats_json) builds
//! locally — and a [`WireMessage::SeriesRequest`] with the sampled
//! time-series ring behind
//! [`CacheDaemon::series_json`](crate::CacheDaemon::series_json).
//! [`scrape_stats`] and [`scrape_series`] are the one-shot clients the
//! `coopcache stats` and `coopcache top` subcommands (and tests) use to
//! pull those documents off a live cluster without disturbing its
//! request path.

use crate::wire::{read_frame, write_frame, WireMessage};
use std::io::{self, Read};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Upper bound on an `OP_STATS` body: a snapshot is a few kilobytes, so
/// anything approaching a megabyte is a corrupt or hostile length.
pub const MAX_STATS_BODY: u64 = 1 << 20;

/// Scrapes one live-stats snapshot from the daemon whose *document*
/// endpoint is `addr`, returning the JSON body.
///
/// # Errors
///
/// Propagates connect/read/write failures; a non-stats reply or an
/// oversized body surfaces as [`io::ErrorKind::InvalidData`].
pub fn scrape_stats(addr: SocketAddr, timeout: Duration) -> io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write_frame(&mut stream, &WireMessage::StatsRequest)?;
    let WireMessage::StatsResponse { body_len, .. } = read_frame(&mut stream)? else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected a stats response",
        ));
    };
    if body_len > MAX_STATS_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized stats body",
        ));
    }
    let mut body = vec![0u8; usize::try_from(body_len).unwrap_or(0)];
    stream.read_exact(&mut body)?;
    String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "stats body is not UTF-8"))
}

/// Scrapes the sampled time-series ring from the daemon whose
/// *document* endpoint is `addr`, returning the JSON body (decode it
/// with [`coopcache_obs::SeriesRing::from_json`]).
///
/// # Errors
///
/// Propagates connect/read/write failures; a non-series reply or an
/// oversized body surfaces as [`io::ErrorKind::InvalidData`].
pub fn scrape_series(addr: SocketAddr, timeout: Duration) -> io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write_frame(&mut stream, &WireMessage::SeriesRequest)?;
    let WireMessage::SeriesResponse { body_len, .. } = read_frame(&mut stream)? else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "expected a series response",
        ));
    };
    if body_len > MAX_STATS_BODY {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "oversized series body",
        ));
    }
    let mut body = vec![0u8; usize::try_from(body_len).unwrap_or(0)];
    stream.read_exact(&mut body)?;
    String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "series body is not UTF-8"))
}
