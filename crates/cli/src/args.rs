//! Hand-rolled flag parsing for the `coopcache` binary.
//!
//! Deliberately dependency-free: the grammar is tiny (one subcommand,
//! `--flag value` pairs) and the offered crate set has no argument
//! parser, so a 150-line parser beats pulling one in.

use coopcache_core::{PlacementScheme, PolicyKind};
use coopcache_proxy::Discovery;
use coopcache_trace::TraceProfile;
use coopcache_types::{ByteSize, DurationMs};
use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: subcommand plus `--key value` flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument).
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// Error produced while parsing or interpreting arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

fn err(msg: impl Into<String>) -> ArgError {
    ArgError(msg.into())
}

impl ParsedArgs {
    /// Parses `argv` (without the program name).
    ///
    /// # Errors
    ///
    /// Rejects missing subcommands, flags without values, duplicate
    /// flags, and stray positional arguments.
    pub fn parse<I, S>(argv: I) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut items = argv.into_iter().map(Into::into);
        let command = items.next().ok_or_else(|| err("missing subcommand"))?;
        if command.starts_with('-') {
            return Err(err(format!("expected a subcommand, got flag {command}")));
        }
        let mut flags = BTreeMap::new();
        while let Some(item) = items.next() {
            let Some(key) = item.strip_prefix("--") else {
                return Err(err(format!("unexpected positional argument {item:?}")));
            };
            let value = items
                .next()
                .ok_or_else(|| err(format!("flag --{key} needs a value")))?;
            if flags.insert(key.to_owned(), value).is_some() {
                return Err(err(format!("flag --{key} given twice")));
            }
        }
        Ok(Self { command, flags })
    }

    /// The raw value of a flag, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// A flag parsed via `FromStr`, or a default.
    ///
    /// # Errors
    ///
    /// Reports the flag name on parse failure.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError>
    where
        T::Err: fmt::Display,
    {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| err(format!("--{key} {raw:?}: {e}"))),
        }
    }

    /// Ensures only the listed flags were used.
    ///
    /// # Errors
    ///
    /// Names the first unknown flag.
    pub fn expect_only(&self, allowed: &[&str]) -> Result<(), ArgError> {
        for key in self.flags.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(err(format!(
                    "unknown flag --{key} for `{}` (allowed: {})",
                    self.command,
                    allowed
                        .iter()
                        .map(|a| format!("--{a}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
        Ok(())
    }
}

/// Parses a byte size: raw bytes (`4096`) or suffixed (`100KB`, `10MB`,
/// `1GB`, decimal units).
///
/// # Errors
///
/// Rejects malformed numbers and unknown suffixes.
pub fn parse_size(raw: &str) -> Result<ByteSize, ArgError> {
    let raw = raw.trim();
    let (digits, factor) = if let Some(d) = raw.strip_suffix("GB") {
        (d, 1_000_000_000)
    } else if let Some(d) = raw.strip_suffix("MB") {
        (d, 1_000_000)
    } else if let Some(d) = raw.strip_suffix("KB") {
        (d, 1_000)
    } else if let Some(d) = raw.strip_suffix('B') {
        (d, 1)
    } else {
        (raw, 1)
    };
    let value: u64 = digits
        .trim()
        .parse()
        .map_err(|e| err(format!("invalid size {raw:?}: {e}")))?;
    Ok(ByteSize::from_bytes(value * factor))
}

/// Parses a placement scheme name.
///
/// # Errors
///
/// Lists the accepted names on failure.
pub fn parse_scheme(raw: &str) -> Result<PlacementScheme, ArgError> {
    match raw {
        "adhoc" | "ad-hoc" => Ok(PlacementScheme::AdHoc),
        "ea" => Ok(PlacementScheme::Ea),
        "ea-tie-store" => Ok(PlacementScheme::EaTieStore),
        other => Err(err(format!(
            "unknown scheme {other:?} (adhoc, ea, ea-tie-store)"
        ))),
    }
}

/// Parses a replacement policy name.
///
/// # Errors
///
/// Lists the accepted names on failure.
pub fn parse_policy(raw: &str) -> Result<PolicyKind, ArgError> {
    match raw {
        "lru" => Ok(PolicyKind::Lru),
        "lfu" => Ok(PolicyKind::Lfu),
        "fifo" => Ok(PolicyKind::Fifo),
        "gdsf" => Ok(PolicyKind::Gdsf),
        "gds" => Ok(PolicyKind::Gds),
        "slru" => Ok(PolicyKind::Slru),
        "s3fifo" => Ok(PolicyKind::S3Fifo),
        other => Err(err(format!(
            "unknown policy {other:?} (lru, lfu, fifo, gdsf, gds, slru, s3fifo)"
        ))),
    }
}

/// Parses a discovery mechanism: `icp`, `isolated`, or `digest:SECONDS`.
///
/// # Errors
///
/// Lists the accepted forms on failure.
pub fn parse_discovery(raw: &str) -> Result<Discovery, ArgError> {
    if raw == "icp" {
        return Ok(Discovery::Icp);
    }
    if raw == "isolated" {
        return Ok(Discovery::Isolated);
    }
    if let Some(secs) = raw.strip_prefix("digest:") {
        let secs: u64 = secs
            .parse()
            .map_err(|e| err(format!("invalid digest period {secs:?}: {e}")))?;
        return Ok(Discovery::Digest {
            refresh_every: DurationMs::from_secs(secs),
            fp_rate: 0.01,
        });
    }
    Err(err(format!(
        "unknown discovery {raw:?} (icp, isolated, digest:SECONDS)"
    )))
}

/// Parses a built-in trace profile name.
///
/// # Errors
///
/// Lists the accepted names on failure.
pub fn parse_profile(raw: &str) -> Result<TraceProfile, ArgError> {
    match raw {
        "small" => Ok(TraceProfile::small()),
        "medium" => Ok(TraceProfile::medium()),
        "bu94" => Ok(TraceProfile::bu94()),
        other => Err(err(format!(
            "unknown profile {other:?} (small, medium, bu94)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_and_flags() {
        let a = ParsedArgs::parse(["simulate", "--caches", "8", "--scheme", "ea"]).unwrap();
        assert_eq!(a.command, "simulate");
        assert_eq!(a.get("caches"), Some("8"));
        assert_eq!(a.get_or("caches", 4u16).unwrap(), 8);
        assert_eq!(a.get_or("missing", 4u16).unwrap(), 4);
        assert!(a.expect_only(&["caches", "scheme"]).is_ok());
        assert!(a.expect_only(&["caches"]).is_err());
    }

    #[test]
    fn rejects_malformed_command_lines() {
        assert!(ParsedArgs::parse(Vec::<String>::new()).is_err());
        assert!(ParsedArgs::parse(["--caches", "8"]).is_err());
        assert!(ParsedArgs::parse(["run", "stray"]).is_err());
        assert!(ParsedArgs::parse(["run", "--flag"]).is_err());
        assert!(ParsedArgs::parse(["run", "--a", "1", "--a", "2"]).is_err());
        let a = ParsedArgs::parse(["run", "--caches", "x"]).unwrap();
        assert!(a.get_or("caches", 4u16).is_err());
    }

    #[test]
    fn size_parsing() {
        assert_eq!(parse_size("4096").unwrap(), ByteSize::from_bytes(4096));
        assert_eq!(parse_size("100KB").unwrap(), ByteSize::from_kb(100));
        assert_eq!(parse_size("10MB").unwrap(), ByteSize::from_mb(10));
        assert_eq!(parse_size("1GB").unwrap(), ByteSize::from_gb(1));
        assert_eq!(parse_size("512B").unwrap(), ByteSize::from_bytes(512));
        assert!(parse_size("ten").is_err());
        assert!(parse_size("10TB").is_err());
    }

    #[test]
    fn scheme_policy_discovery_profile_parsing() {
        assert_eq!(parse_scheme("ea").unwrap(), PlacementScheme::Ea);
        assert_eq!(parse_scheme("adhoc").unwrap(), PlacementScheme::AdHoc);
        assert!(parse_scheme("best").is_err());
        assert_eq!(parse_policy("gdsf").unwrap(), PolicyKind::Gdsf);
        assert_eq!(parse_policy("s3fifo").unwrap(), PolicyKind::S3Fifo);
        assert!(parse_policy("mru").is_err());
        assert_eq!(parse_discovery("icp").unwrap(), Discovery::Icp);
        assert!(matches!(
            parse_discovery("digest:60").unwrap(),
            Discovery::Digest { .. }
        ));
        assert!(parse_discovery("digest:x").is_err());
        assert!(parse_discovery("gossip").is_err());
        assert_eq!(parse_profile("small").unwrap(), TraceProfile::small());
        assert!(parse_profile("huge").is_err());
    }
}
