//! The `coopcache` subcommands, written against a generic writer so every
//! command is testable without spawning a process.

use crate::args::{
    parse_discovery, parse_policy, parse_profile, parse_scheme, parse_size, ArgError, ParsedArgs,
};
use coopcache_metrics::{pct, Table};
use coopcache_net::{ClusterConfig, FaultKind, FaultMode, FaultPlan, LoopbackCluster};
use coopcache_obs::{
    parse_json, Event, EventKind, EventSink, HistogramSink, JsonValue, JsonlSink, SeriesRing,
    SinkHandle,
};
use coopcache_sim::{capacity_sweep, run, run_with_sink, SimConfig, PAPER_CACHE_SIZES};
use coopcache_trace::{generate, read_trace, write_trace, Rng, Trace, TraceProfile};
use coopcache_types::{ByteSize, CacheId, DocId, DurationMs};
use std::io::Write;

/// Top-level usage text.
pub const USAGE: &str = "\
coopcache — expiration-age based cooperative web caching

USAGE:
    coopcache <COMMAND> [--flag value]...

COMMANDS:
    gen       generate a synthetic trace file
                --profile small|medium|bu94   (default small)
                --seed N                      (default profile seed)
                --requests N                  (default profile size)
                --out PATH                    (required)
    stats     print aggregate statistics of a trace, or scrape daemons
                --trace PATH | --profile NAME
                --addr HOST:PORT              (scrape OP_STATS from a live daemon)
                --cluster HOST:PORT,...       (scrape many daemons; errors isolated)
                --format table|json|prom      (scrape rendering, default table)
                --timeout-ms N                (scrape timeout, default 2000)
    top       cluster dashboard over per-node time series
                --addrs HOST:PORT,...         (scrape OP_SERIES from live daemons)
                --replay PATH                 (rebuild series offline from JSONL events)
                --once true                   (render one frame, no screen clearing)
                --frames N                    (stop the live view after N frames)
                --refresh-ms N                (live refresh period, default 1000)
                --interval-ms N               (replay sampling interval, default 1000)
                --points N                    (replay ring capacity, default 120)
                --timeout-ms N                (scrape timeout, default 2000)
                --json true                   (emit the rings as JSON; needs
                                               --once true or --replay)
    health    evaluate SLO alert rules against live daemons' series
                --addrs HOST:PORT,...         (required; errors isolated per node)
                --hit-floor PERMILLE          (hit-rate floor rule)
                --p99-ceiling US              (p99 latency ceiling rule)
                --quarantine-max N            (quarantined-peer ceiling rule)
                --shed-ceiling PERMILLE       (admission-shed ceiling rule)
                --for N                       (burn windows per rule, default 3)
                --json true                   (machine-readable report)
                --timeout-ms N                (scrape timeout, default 2000)
    trace     assemble span events into per-request trace trees
                --events PATH                 (required, a JSONL event stream)
                --id TRACEID | --seq N        (one trace; default: all of them)
                --times true                  (append start offsets and durations)
    simulate  replay a trace through a cache group
                --trace PATH | --profile NAME (default small)
                --aggregate SIZE              (default 10MB)
                --caches N                    (default 4)
                --scheme adhoc|ea|ea-tie-store (default ea)
                --policy lru|lfu|fifo|gdsf|gds|slru|s3fifo (default lru)
                --discovery icp|isolated|digest:SECONDS (default icp)
                --ttl SECONDS                 (default none)
                --warmup FRACTION             (default 0)
                --events PATH                 (stream events as JSONL)
                --event-summary true          (print event histograms)
    sweep     compare ad-hoc and EA across the paper's five sizes
                --trace PATH | --profile NAME (default small)
                --caches N                    (default 4)
    serve     run a live loopback cluster and push a demo workload
                --caches N                    (default 3)
                --capacity SIZE per cache     (default 128KB)
                --scheme adhoc|ea             (default ea)
                --requests N                  (default 300)
                --chaos SEED                  (inject a seeded peer-fault mix)
                --kill-after N                (halt the last daemon mid-run)
                --events PATH                 (stream events, spans included, as JSONL)
    bench-daemon  measure live daemon throughput over loopback sockets
                --requests N                  (default 200000)
                --clients N                   (default 2)
                --pipeline N                  (default 64, requests per batch)
                --doc-size BYTES              (default 256)
                --docs N                      (default 64, pre-warmed working set)
                --smoke true                  (small gating run; fails unless
                                               connections are reused)
                --json PATH                   (write the results/ experiment record)
                --events off|sampled|both     (telemetry during the bench: off,
                                               deterministically sampled, or one
                                               run of each plus the overhead)
                --sample-rate PERMILLE        (span keep rate, default 100)
                --sample-seed N               (sampler seed, default 1)
                --repeat N                    (best-of-N per mode, default 1)
    analyze   characterize a workload (locality, popularity, sharing, MIN bound)
                --trace PATH | --profile NAME (default small)
                --aggregate SIZE for the MIN bound (default 10MB)
    import    convert a real proxy log to the coopcache trace format
                --log PATH                    (required)
                --format squid|clf            (default squid)
                --out PATH                    (required)
    bench-diff  compare two BENCH_*.json snapshots cell by cell
                --old PATH                    (required)
                --new PATH                    (required)
    bench-trend collate BENCH_*.json snapshots into per-cell trend lines
                --files PATH,PATH,...         (two or more, oldest first)
    help      print this message
";

/// Runs a parsed command, writing human-readable output to `out`.
///
/// # Errors
///
/// Returns a user-facing message for flag errors, I/O failures and
/// malformed traces.
pub fn dispatch<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    match args.command.as_str() {
        "gen" => cmd_gen(args, out),
        "stats" => cmd_stats(args, out),
        "top" => cmd_top(args, out),
        "health" => cmd_health(args, out),
        "bench-diff" => cmd_bench_diff(args, out),
        "bench-trend" => cmd_bench_trend(args, out),
        "bench-daemon" => cmd_bench_daemon(args, out),
        "trace" => cmd_trace(args, out),
        "simulate" => cmd_simulate(args, out),
        "sweep" => cmd_sweep(args, out),
        "serve" => cmd_serve(args, out),
        "analyze" => cmd_analyze(args, out),
        "import" => cmd_import(args, out),
        "help" | "--help" | "-h" => {
            write_out(out, USAGE)?;
            Ok(())
        }
        other => Err(ArgError(format!(
            "unknown command {other:?}; try `coopcache help`"
        ))),
    }
}

fn write_out<W: Write>(out: &mut W, text: impl AsRef<str>) -> Result<(), ArgError> {
    out.write_all(text.as_ref().as_bytes())
        .map_err(|e| ArgError(format!("write failed: {e}")))
}

fn load_trace(args: &ParsedArgs) -> Result<Trace, ArgError> {
    match (args.get("trace"), args.get("profile")) {
        (Some(_), Some(_)) => Err(ArgError("pass --trace or --profile, not both".into())),
        (Some(path), None) => {
            let file = std::fs::File::open(path)
                .map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
            read_trace(file).map_err(|e| ArgError(e.to_string()))
        }
        (None, profile) => {
            let profile = parse_profile(profile.unwrap_or("small"))?;
            generate(&profile).map_err(|e| ArgError(e.to_string()))
        }
    }
}

fn cmd_gen<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    args.expect_only(&["profile", "seed", "requests", "out"])?;
    let mut profile: TraceProfile = parse_profile(args.get("profile").unwrap_or("small"))?;
    if let Some(seed) = args.get("seed") {
        profile = profile.with_seed(
            seed.parse()
                .map_err(|e| ArgError(format!("--seed {seed:?}: {e}")))?,
        );
    }
    if let Some(requests) = args.get("requests") {
        profile = profile.with_requests(
            requests
                .parse()
                .map_err(|e| ArgError(format!("--requests {requests:?}: {e}")))?,
        );
    }
    let path = args
        .get("out")
        .ok_or_else(|| ArgError("gen requires --out PATH".into()))?;
    let trace = generate(&profile).map_err(|e| ArgError(e.to_string()))?;
    let file =
        std::fs::File::create(path).map_err(|e| ArgError(format!("cannot create {path}: {e}")))?;
    write_trace(std::io::BufWriter::new(file), &trace)
        .map_err(|e| ArgError(format!("write failed: {e}")))?;
    write_out(out, format!("wrote {} records to {path}\n", trace.len()))
}

fn cmd_stats<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    if args.get("cluster").is_some() {
        return cmd_stats_cluster(args, out);
    }
    if args.get("addr").is_some() {
        return cmd_stats_scrape(args, out);
    }
    args.expect_only(&["trace", "profile"])?;
    let trace = load_trace(args)?;
    let s = trace.stats();
    let mut table = Table::new(vec!["statistic", "value"]);
    table.row(vec!["requests".into(), s.requests.to_string()]);
    table.row(vec!["unique documents".into(), s.unique_docs.to_string()]);
    table.row(vec!["unique clients".into(), s.unique_clients.to_string()]);
    table.row(vec!["total bytes".into(), s.total_bytes.to_string()]);
    table.row(vec!["unique bytes".into(), s.unique_bytes.to_string()]);
    table.row(vec!["mean doc size".into(), s.mean_doc_size().to_string()]);
    table.row(vec![
        "span (days)".into(),
        format!("{:.1}", (s.end - s.start).as_secs_f64() / 86_400.0),
    ]);
    write_out(out, table.to_string())
}

/// The `stats --addr` path: one `OP_STATS` request to a live daemon's
/// document port, rendered as a table, raw JSON, or Prometheus text.
fn cmd_stats_scrape<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    use std::net::SocketAddr;
    use std::time::Duration;
    args.expect_only(&["addr", "format", "timeout-ms"])?;
    let raw = args.get("addr").expect("checked by cmd_stats");
    let addr: SocketAddr = raw
        .parse()
        .map_err(|e| ArgError(format!("--addr {raw:?}: {e}")))?;
    let timeout = Duration::from_millis(args.get_or("timeout-ms", 2_000u64)?);
    let format = args.get("format").unwrap_or("table");
    if !["table", "json", "prom"].contains(&format) {
        return Err(ArgError(format!(
            "unknown format {format:?} (table, json, prom)"
        )));
    }
    let body = coopcache_net::scrape_stats(addr, timeout)
        .map_err(|e| ArgError(format!("scrape of {addr} failed: {e}")))?;
    match format {
        "json" => {
            write_out(out, &body)?;
            write_out(out, "\n")
        }
        "prom" => write_out(out, stats_prometheus(&body)?),
        _ => write_out(out, stats_table(&body)?),
    }
}

fn parse_stats_body(body: &str) -> Result<JsonValue, ArgError> {
    parse_json(body).map_err(|e| ArgError(format!("malformed stats body: {e}")))
}

fn stats_cache_id(v: &JsonValue) -> Result<u64, ArgError> {
    v.get("cache")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| ArgError("stats body has no cache id".into()))
}

/// Renders an `OP_STATS` body as a two-column table: non-zero event
/// counters, per-source latency quantiles, quarantine and occupancy.
fn stats_table(body: &str) -> Result<String, ArgError> {
    let v = parse_stats_body(body)?;
    let mut table = Table::new(vec!["field", "value"]);
    table.row(vec!["cache".into(), stats_cache_id(&v)?.to_string()]);
    if let Some(counters) = v.get("counters").and_then(JsonValue::as_object) {
        for (kind, n) in counters {
            let n = n.as_u64().unwrap_or(0);
            if n > 0 {
                table.row(vec![format!("events.{kind}"), n.to_string()]);
            }
        }
    }
    if let Some(latency) = v.get("latency").and_then(JsonValue::as_object) {
        for (source, snap) in latency {
            let g = |key: &str| snap.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
            table.row(vec![
                format!("latency.{source}"),
                format!(
                    "p50={}us p99={}us max={}us (n={})",
                    g("p50_us"),
                    g("p99_us"),
                    g("max_us"),
                    g("count")
                ),
            ]);
        }
    }
    let quarantined = v
        .get("quarantined")
        .and_then(JsonValue::as_array)
        .map_or_else(String::new, |ids| {
            ids.iter()
                .filter_map(JsonValue::as_u64)
                .map(|id| id.to_string())
                .collect::<Vec<_>>()
                .join(",")
        });
    table.row(vec![
        "quarantined".into(),
        if quarantined.is_empty() {
            "-".into()
        } else {
            quarantined
        },
    ]);
    if let Some(occ) = v.get("occupancy") {
        let g = |key: &str| occ.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        table.row(vec![
            "occupancy".into(),
            format!(
                "{} docs, {} / {} bytes",
                g("docs"),
                g("used_bytes"),
                g("capacity_bytes")
            ),
        ]);
    }
    table.row(vec![
        "expiration age (ms)".into(),
        v.get("expiration_age_ms")
            .and_then(JsonValue::as_u64)
            .map_or("-".into(), |ms| ms.to_string()),
    ]);
    Ok(table.to_string())
}

/// Renders an `OP_STATS` body in the Prometheus text exposition format —
/// counters keep their zero series so scrapes produce stable label sets.
fn stats_prometheus(body: &str) -> Result<String, ArgError> {
    use std::fmt::Write as _;
    let v = parse_stats_body(body)?;
    let cache = stats_cache_id(&v)?;
    let mut out = String::new();
    out.push_str("# TYPE coopcache_events_total counter\n");
    if let Some(counters) = v.get("counters").and_then(JsonValue::as_object) {
        for (kind, n) in counters {
            let n = n.as_u64().unwrap_or(0);
            let _ = writeln!(
                out,
                "coopcache_events_total{{cache=\"{cache}\",kind=\"{kind}\"}} {n}"
            );
        }
    }
    out.push_str("# TYPE coopcache_latency_us gauge\n");
    if let Some(latency) = v.get("latency").and_then(JsonValue::as_object) {
        for (source, snap) in latency {
            for stat in ["p50", "p90", "p99", "max"] {
                let n = snap
                    .get(&format!("{stat}_us"))
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0);
                let _ = writeln!(
                    out,
                    "coopcache_latency_us{{cache=\"{cache}\",source=\"{source}\",stat=\"{stat}\"}} {n}"
                );
            }
            let n = snap.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
            let _ = writeln!(
                out,
                "coopcache_latency_samples_total{{cache=\"{cache}\",source=\"{source}\"}} {n}"
            );
        }
    }
    let quarantined = v
        .get("quarantined")
        .and_then(JsonValue::as_array)
        .map_or(0, <[JsonValue]>::len);
    let _ = writeln!(
        out,
        "coopcache_quarantined_peers{{cache=\"{cache}\"}} {quarantined}"
    );
    if let Some(occ) = v.get("occupancy") {
        let g = |key: &str| occ.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        let _ = writeln!(
            out,
            "coopcache_cache_docs{{cache=\"{cache}\"}} {}",
            g("docs")
        );
        let _ = writeln!(
            out,
            "coopcache_cache_used_bytes{{cache=\"{cache}\"}} {}",
            g("used_bytes")
        );
        let _ = writeln!(
            out,
            "coopcache_cache_capacity_bytes{{cache=\"{cache}\"}} {}",
            g("capacity_bytes")
        );
    }
    if let Some(ms) = v.get("expiration_age_ms").and_then(JsonValue::as_u64) {
        let _ = writeln!(out, "coopcache_expiration_age_ms{{cache=\"{cache}\"}} {ms}");
    }
    Ok(out)
}

/// Parses a comma-separated daemon address list.
fn parse_addrs(raw: &str) -> Result<Vec<std::net::SocketAddr>, ArgError> {
    let addrs = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|e| ArgError(format!("bad address {s:?}: {e}")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    if addrs.is_empty() {
        return Err(ArgError("expected HOST:PORT[,HOST:PORT...]".into()));
    }
    Ok(addrs)
}

/// The `stats --cluster` path: one `OP_STATS` scrape per daemon with
/// per-node error isolation — an unreachable or refusing daemon gets an
/// error row and the rest of the scrape proceeds.
fn cmd_stats_cluster<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    use std::time::Duration;
    args.expect_only(&["cluster", "timeout-ms"])?;
    let addrs = parse_addrs(args.get("cluster").expect("checked by cmd_stats"))?;
    let timeout = Duration::from_millis(args.get_or("timeout-ms", 2_000u64)?);
    let mut table = Table::new(vec![
        "node",
        "status",
        "requests",
        "docs",
        "used_bytes",
        "ea_ms",
        "quar",
    ]);
    let mut reached = 0usize;
    for addr in &addrs {
        let scraped = coopcache_net::scrape_stats(*addr, timeout)
            .map_err(|e| e.to_string())
            .and_then(|body| parse_stats_body(&body).map_err(|e| e.to_string()));
        match scraped {
            Ok(v) => {
                reached += 1;
                let requests = v
                    .get("counters")
                    .and_then(|c| c.get("request"))
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0);
                let occ = |key: &str| {
                    v.get("occupancy")
                        .and_then(|o| o.get(key))
                        .and_then(JsonValue::as_u64)
                        .unwrap_or(0)
                };
                table.row(vec![
                    addr.to_string(),
                    v.get("cache")
                        .and_then(JsonValue::as_u64)
                        .map_or_else(|| "cache ?".into(), |id| format!("cache {id}")),
                    requests.to_string(),
                    occ("docs").to_string(),
                    occ("used_bytes").to_string(),
                    v.get("expiration_age_ms")
                        .and_then(JsonValue::as_u64)
                        .map_or("-".into(), |ms| ms.to_string()),
                    v.get("quarantined")
                        .and_then(JsonValue::as_array)
                        .map_or(0, <[JsonValue]>::len)
                        .to_string(),
                ]);
            }
            Err(e) => {
                let dash = || "-".to_owned();
                table.row(vec![
                    addr.to_string(),
                    format!("error: {e}"),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                    dash(),
                ]);
            }
        }
    }
    write_out(out, table.to_string())?;
    write_out(out, format!("scraped {reached}/{} daemons\n", addrs.len()))
}

/// Scrapes one `OP_SERIES` ring per daemon, isolating per-node failures
/// into error strings so a dead node never hides the live ones.
fn scrape_rings(
    addrs: &[std::net::SocketAddr],
    timeout: std::time::Duration,
) -> (Vec<SeriesRing>, Vec<String>) {
    let mut rings = Vec::new();
    let mut errors = Vec::new();
    for addr in addrs {
        match coopcache_net::scrape_series(*addr, timeout)
            .map_err(|e| e.to_string())
            .and_then(|body| SeriesRing::from_json(&body).map_err(|e| e.to_string()))
        {
            Ok(ring) => rings.push(ring),
            Err(e) => errors.push(format!("node {addr}: {e}")),
        }
    }
    (rings, errors)
}

/// Renders scraped rings (each already a deterministic JSON document)
/// plus any per-node scrape errors as one JSON object — the `--json`
/// form of `top --once` and the replay view.
fn rings_json(rings: &[SeriesRing], errors: &[String]) -> String {
    let mut text = String::from("{\"rings\":[");
    for (i, ring) in rings.iter().enumerate() {
        if i > 0 {
            text.push(',');
        }
        text.push_str(&ring.to_json());
    }
    text.push_str("],\"errors\":[");
    for (i, e) in errors.iter().enumerate() {
        if i > 0 {
            text.push(',');
        }
        text.push('"');
        coopcache_obs::escape_into(&mut text, e);
        text.push('"');
    }
    text.push_str("]}\n");
    text
}

/// Assembles the rule set the `health` subcommand evaluates from its
/// threshold flags. Flagless invocations get a permissive default set so
/// the cluster view still renders per-rule state.
fn health_rules(args: &ParsedArgs) -> Result<Vec<coopcache_obs::AlertRule>, ArgError> {
    use coopcache_obs::AlertRule;
    let for_windows: u32 = args.get_or("for", 3u32)?;
    let mut rules = Vec::new();
    if let Some(raw) = args.get("hit-floor") {
        rules.push(AlertRule::hit_rate_floor(
            raw.parse()
                .map_err(|e| ArgError(format!("--hit-floor {raw:?}: {e}")))?,
            for_windows,
        ));
    }
    if let Some(raw) = args.get("p99-ceiling") {
        rules.push(AlertRule::p99_ceiling(
            raw.parse()
                .map_err(|e| ArgError(format!("--p99-ceiling {raw:?}: {e}")))?,
            for_windows,
        ));
    }
    if let Some(raw) = args.get("quarantine-max") {
        rules.push(AlertRule::quarantine_ceiling(
            raw.parse()
                .map_err(|e| ArgError(format!("--quarantine-max {raw:?}: {e}")))?,
            for_windows,
        ));
    }
    if let Some(raw) = args.get("shed-ceiling") {
        rules.push(AlertRule::shed_rate_ceiling(
            raw.parse()
                .map_err(|e| ArgError(format!("--shed-ceiling {raw:?}: {e}")))?,
            for_windows,
        ));
    }
    if rules.is_empty() {
        // No thresholds given: watch for any quarantined peer and a
        // collapsed hit rate, the two "the cluster is degrading" smells.
        rules.push(AlertRule::quarantine_ceiling(0, for_windows));
        rules.push(AlertRule::hit_rate_floor(1, for_windows));
    }
    Ok(rules)
}

/// The `health` subcommand: scrapes each daemon's `OP_SERIES` ring and
/// replays the rule set through a client-side [`coopcache_obs::AlertEngine`],
/// so the view needs nothing from the daemon beyond the series it
/// already serves. Node failures are isolated; the command exits nonzero
/// only when *no* node could be scraped.
fn cmd_health<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    use coopcache_obs::{AlertEngine, AlertState};
    use std::time::Duration;
    args.expect_only(&[
        "addrs",
        "hit-floor",
        "p99-ceiling",
        "quarantine-max",
        "shed-ceiling",
        "for",
        "json",
        "timeout-ms",
    ])?;
    let addrs = parse_addrs(
        args.get("addrs")
            .ok_or_else(|| ArgError("health requires --addrs HOST:PORT,...".into()))?,
    )?;
    let timeout = Duration::from_millis(args.get_or("timeout-ms", 2_000u64)?);
    let json = parse_bool("json", args.get("json").unwrap_or("false"))?;
    let rules = health_rules(args)?;

    struct NodeHealth {
        addr: std::net::SocketAddr,
        scraped: Result<(SeriesRing, Vec<coopcache_obs::AlertFiring>), String>,
    }
    let nodes: Vec<NodeHealth> = addrs
        .iter()
        .map(|addr| NodeHealth {
            addr: *addr,
            scraped: coopcache_net::scrape_series(*addr, timeout)
                .map_err(|e| e.to_string())
                .and_then(|body| SeriesRing::from_json(&body).map_err(|e| e.to_string()))
                .map(|ring| {
                    let transitions = AlertEngine::replay(&ring, rules.clone());
                    (ring, transitions)
                }),
        })
        .collect();
    if nodes.iter().all(|n| n.scraped.is_err()) {
        let first = nodes
            .iter()
            .find_map(|n| n.scraped.as_ref().err().cloned())
            .unwrap_or_default();
        return Err(ArgError(format!("no node reachable ({first})")));
    }

    // The final state of each rule is the last transition it emitted
    // (transitions-only streams make "currently firing" a fold).
    let firing_now =
        |transitions: &[coopcache_obs::AlertFiring]| -> Vec<coopcache_obs::AlertFiring> {
            rules
                .iter()
                .filter_map(|rule| {
                    transitions
                        .iter()
                        .rev()
                        .find(|t| {
                            t.metric == rule.metric
                                && t.op == rule.op
                                && t.threshold == rule.threshold
                        })
                        .filter(|t| t.state == AlertState::Firing)
                        .copied()
                })
                .collect()
        };

    if json {
        let mut w = coopcache_obs::JsonWriter::new();
        w.begin_object();
        w.key("rules");
        w.begin_array();
        for rule in &rules {
            w.begin_object();
            w.key("metric");
            w.string(rule.metric.name());
            w.key("op");
            w.string(rule.op.name());
            w.key("threshold");
            w.u64(rule.threshold);
            w.key("for_windows");
            w.u64(u64::from(rule.for_windows));
            w.end_object();
        }
        w.end_array();
        w.key("nodes");
        w.begin_array();
        for node in &nodes {
            w.begin_object();
            w.key("addr");
            w.string(&node.addr.to_string());
            match &node.scraped {
                Err(e) => {
                    w.key("error");
                    w.string(e);
                }
                Ok((ring, transitions)) => {
                    w.key("cache");
                    w.u64(u64::from(ring.cache().as_u16()));
                    let last = ring.points().last();
                    w.key("requests");
                    w.u64(last.map_or(0, |p| p.counters[EventKind::Request.index()]));
                    w.key("hit_permille");
                    w.opt_u64(last.and_then(|p| {
                        let requests = p.counters[EventKind::Request.index()];
                        let hits = p.local_hits + p.remote_hits;
                        (requests > 0).then(|| hits * 1_000 / requests)
                    }));
                    w.key("p99_us");
                    w.opt_u64(last.and_then(|p| p.latency.map(|l| l.p99)));
                    w.key("quarantined");
                    w.u64(last.map_or(0, |p| p.quarantined));
                    w.key("alerts");
                    w.begin_array();
                    for t in transitions {
                        w.begin_object();
                        w.key("metric");
                        w.string(t.metric.name());
                        w.key("op");
                        w.string(t.op.name());
                        w.key("threshold");
                        w.u64(t.threshold);
                        w.key("value");
                        w.u64(t.value);
                        w.key("windows");
                        w.u64(t.windows);
                        w.key("state");
                        w.string(t.state.name());
                        w.end_object();
                    }
                    w.end_array();
                    w.key("firing");
                    w.u64(firing_now(transitions).len() as u64);
                }
            }
            w.end_object();
        }
        w.end_array();
        w.end_object();
        let mut text = w.finish();
        text.push('\n');
        return write_out(out, text);
    }

    let mut table = Table::new(vec![
        "node", "status", "req", "hit ‰", "p99 us", "quar", "alerts",
    ]);
    let mut cluster_firing = 0usize;
    for node in &nodes {
        match &node.scraped {
            Err(e) => {
                table.row(vec![
                    node.addr.to_string(),
                    format!("error: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
            Ok((ring, transitions)) => {
                let firing = firing_now(transitions);
                cluster_firing += firing.len();
                let last = ring.points().last();
                let requests = last.map_or(0, |p| p.counters[EventKind::Request.index()]);
                let hits = last.map_or(0, |p| p.local_hits + p.remote_hits);
                let alerts = if firing.is_empty() {
                    "-".into()
                } else {
                    firing
                        .iter()
                        .map(|f| format!("{} {} {}", f.metric.name(), f.op.name(), f.threshold))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                table.row(vec![
                    format!("{} (cache {})", node.addr, ring.cache().as_u16()),
                    if firing.is_empty() { "ok" } else { "FIRING" }.into(),
                    requests.to_string(),
                    (hits * 1_000)
                        .checked_div(requests)
                        .map_or_else(|| "-".into(), |permille| permille.to_string()),
                    last.and_then(|p| p.latency.map(|l| l.p99.to_string()))
                        .unwrap_or_else(|| "-".into()),
                    last.map_or(0, |p| p.quarantined).to_string(),
                    alerts,
                ]);
            }
        }
    }
    write_out(out, table.to_string())?;
    let reached = nodes.iter().filter(|n| n.scraped.is_ok()).count();
    write_out(
        out,
        format!(
            "{} rule(s) over {reached}/{} node(s): {cluster_firing} firing\n",
            rules.len(),
            nodes.len(),
        ),
    )
}

/// The `top` subcommand: a cluster dashboard over per-node series rings,
/// either scraped live over `OP_SERIES` or rebuilt offline from a JSONL
/// event stream. The replay path is a pure function of the file bytes,
/// so the same file always renders byte-identically.
fn cmd_top<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    use std::time::Duration;
    args.expect_only(&[
        "addrs",
        "replay",
        "once",
        "frames",
        "refresh-ms",
        "interval-ms",
        "points",
        "timeout-ms",
        "json",
    ])?;
    let json = parse_bool("json", args.get("json").unwrap_or("false"))?;
    if let Some(path) = args.get("replay") {
        if args.get("addrs").is_some() {
            return Err(ArgError("pass --addrs or --replay, not both".into()));
        }
        let interval_ms = args.get_or("interval-ms", 1_000u64)?;
        let points = args.get_or("points", coopcache_obs::DEFAULT_SERIES_CAPACITY)?;
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let mut replayer = coopcache_obs::SeriesReplayer::new(interval_ms, points);
        replayer
            .observe_jsonl(&text)
            .map_err(|e| ArgError(format!("{path}: {e}")))?;
        let rings = replayer.finish();
        if rings.is_empty() {
            return Err(ArgError(format!("no node events in {path}")));
        }
        if json {
            return write_out(out, rings_json(&rings, &[]));
        }
        // Replayed series carry no gauges (occupancy is not in the
        // event stream), so the lean column set is rendered.
        return write_out(out, coopcache_obs::render_top(&rings, false));
    }
    let addrs =
        parse_addrs(args.get("addrs").ok_or_else(|| {
            ArgError("top requires --addrs HOST:PORT,... or --replay PATH".into())
        })?)?;
    let timeout = Duration::from_millis(args.get_or("timeout-ms", 2_000u64)?);
    let once = parse_bool("once", args.get("once").unwrap_or("false"))?;
    if json && !once {
        return Err(ArgError(
            "top --json needs --once true or --replay PATH".into(),
        ));
    }
    let frames: u64 = args.get_or("frames", 0u64)?;
    let refresh = Duration::from_millis(args.get_or("refresh-ms", 1_000u64)?);
    let mut frame = 0u64;
    loop {
        let (rings, errors) = scrape_rings(&addrs, timeout);
        if json {
            return write_out(out, rings_json(&rings, &errors));
        }
        let mut text = String::new();
        if !once {
            // Clear + home, like top(1), so each frame overdraws the last.
            text.push_str("\x1b[2J\x1b[H");
        }
        text.push_str(&coopcache_obs::render_top(&rings, true));
        for e in &errors {
            text.push_str(e);
            text.push('\n');
        }
        write_out(out, text)?;
        out.flush()
            .map_err(|e| ArgError(format!("write failed: {e}")))?;
        frame += 1;
        if once || (frames > 0 && frame >= frames) {
            return Ok(());
        }
        std::thread::sleep(refresh);
    }
}

/// One experiment out of a `BENCH_*.json` snapshot.
struct BenchExperiment {
    id: String,
    headers: Vec<String>,
    /// Rows keyed by their leading non-numeric label cells.
    rows: Vec<(String, Vec<String>)>,
}

/// A bench table cell as a number, `None` for label cells like `100KB`
/// or `ad-hoc`. Signed cells (`+1.46`) parse.
fn bench_cell_value(cell: &str) -> Option<f64> {
    let v: f64 = cell.trim().parse().ok()?;
    v.is_finite().then_some(v)
}

/// The label a row is matched on across snapshots: every leading cell
/// that is not a number (`["100KB", "ad-hoc"]` → `"100KB ad-hoc"`).
fn bench_row_key(cells: &[String]) -> String {
    let label: Vec<&str> = cells
        .iter()
        .map(String::as_str)
        .take_while(|c| bench_cell_value(c).is_none())
        .collect();
    if label.is_empty() {
        cells.first().cloned().unwrap_or_default()
    } else {
        label.join(" ")
    }
}

/// Loads a snapshot written by `scripts/bench.sh`.
fn load_bench(path: &str) -> Result<(String, Vec<BenchExperiment>), ArgError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let v = parse_json(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
    let name = v
        .get("bench")
        .and_then(JsonValue::as_str)
        .unwrap_or("?")
        .to_owned();
    let raw = v
        .get("experiments")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| ArgError(format!("{path}: no experiments array")))?;
    let mut experiments = Vec::new();
    for exp in raw {
        let id = exp
            .get("id")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ArgError(format!("{path}: experiment without an id")))?
            .to_owned();
        let strings = |key: &str| -> Vec<String> {
            exp.get(key)
                .and_then(JsonValue::as_array)
                .map_or_else(Vec::new, |cells| {
                    cells
                        .iter()
                        .filter_map(JsonValue::as_str)
                        .map(str::to_owned)
                        .collect()
                })
        };
        let headers = strings("headers");
        let rows = exp
            .get("rows")
            .and_then(JsonValue::as_array)
            .map_or_else(Vec::new, |rows| {
                rows.iter()
                    .map(|row| {
                        let cells: Vec<String> = row.as_array().map_or_else(Vec::new, |cells| {
                            cells
                                .iter()
                                .filter_map(JsonValue::as_str)
                                .map(str::to_owned)
                                .collect()
                        });
                        (bench_row_key(&cells), cells)
                    })
                    .collect()
            });
        experiments.push(BenchExperiment { id, headers, rows });
    }
    Ok((name, experiments))
}

/// The `bench-diff` subcommand: compares two benchmark snapshots
/// experiment by experiment and prints per-cell deltas. Advisory by
/// design — drift is reported, only unreadable snapshots are errors.
fn cmd_bench_diff<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    args.expect_only(&["old", "new"])?;
    let old_path = args
        .get("old")
        .ok_or_else(|| ArgError("bench-diff requires --old PATH".into()))?;
    let new_path = args
        .get("new")
        .ok_or_else(|| ArgError("bench-diff requires --new PATH".into()))?;
    let (old_name, old) = load_bench(old_path)?;
    let (new_name, new) = load_bench(new_path)?;
    write_out(
        out,
        format!("bench-diff: {old_name} ({old_path}) -> {new_name} ({new_path})\n"),
    )?;
    let mut changed = 0usize;
    let mut compared = 0usize;
    for exp in &new {
        let Some(before) = old.iter().find(|e| e.id == exp.id) else {
            write_out(out, format!("  {}: only in {new_path}\n", exp.id))?;
            continue;
        };
        for (key, cells) in &exp.rows {
            let Some((_, old_cells)) = before.rows.iter().find(|(k, _)| k == key) else {
                write_out(out, format!("  {} / {key}: new row\n", exp.id))?;
                continue;
            };
            for (i, (n, o)) in cells.iter().zip(old_cells.iter()).enumerate() {
                compared += 1;
                let column = exp.headers.get(i).map_or("?", String::as_str);
                match (bench_cell_value(o), bench_cell_value(n)) {
                    (Some(a), Some(b)) if (b - a).abs() > 1e-9 => {
                        changed += 1;
                        write_out(
                            out,
                            format!(
                                "  {} / {key} / {column}: {o} -> {n} ({:+.2})\n",
                                exp.id,
                                b - a
                            ),
                        )?;
                    }
                    (Some(_), Some(_)) => {}
                    _ if o != n => {
                        changed += 1;
                        write_out(
                            out,
                            format!("  {} / {key} / {column}: {o} -> {n}\n", exp.id),
                        )?;
                    }
                    _ => {}
                }
            }
        }
    }
    for exp in &old {
        if !new.iter().any(|e| e.id == exp.id) {
            write_out(out, format!("  {}: only in {old_path}\n", exp.id))?;
        }
    }
    write_out(
        out,
        if changed == 0 {
            format!("no differences across {compared} compared cell(s)\n")
        } else {
            format!("{changed} differing cell(s) of {compared} compared\n")
        },
    )
}

/// The `bench-daemon` subcommand: drives the pooled daemon transport
/// over loopback (`coopcache_net::run_daemon_bench`) and reports
/// sustained throughput, latency percentiles, and the pooling/admission
/// counters scraped over `OP_STATS`. `--smoke true` turns the run into
/// a gate: it fails unless the pipelined clients actually reused their
/// connections.
fn cmd_bench_daemon<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    use coopcache_net::{run_daemon_bench, DaemonBenchConfig, EventsMode};
    args.expect_only(&[
        "requests",
        "clients",
        "pipeline",
        "doc-size",
        "docs",
        "smoke",
        "json",
        "events",
        "sample-rate",
        "sample-seed",
        "repeat",
    ])?;
    let smoke = parse_bool("smoke", args.get("smoke").unwrap_or("false"))?;
    let mut cfg = if smoke {
        DaemonBenchConfig::smoke()
    } else {
        DaemonBenchConfig::default()
    };
    cfg.requests = args.get_or("requests", cfg.requests)?;
    cfg.clients = args.get_or("clients", cfg.clients)?;
    cfg.pipeline = args.get_or("pipeline", cfg.pipeline)?;
    cfg.doc_size = args.get_or("doc-size", cfg.doc_size)?;
    cfg.docs = args.get_or("docs", cfg.docs)?;
    if cfg.clients == 0 || cfg.pipeline == 0 || cfg.docs == 0 {
        return Err(ArgError(
            "bench-daemon needs nonzero --clients, --pipeline and --docs".into(),
        ));
    }
    let rate: u32 = args.get_or("sample-rate", 100u32)?;
    let seed: u64 = args.get_or("sample-seed", 1u64)?;
    let (run_off, run_sampled) = match args.get("events").unwrap_or("off") {
        "off" => (true, false),
        "sampled" => (false, true),
        "both" => (true, true),
        other => {
            return Err(ArgError(format!(
                "--events {other:?}: expected off, sampled or both"
            )))
        }
    };
    let repeat: u32 = args.get_or("repeat", 1u32)?;
    if repeat == 0 {
        return Err(ArgError("bench-daemon needs nonzero --repeat".into()));
    }
    // Loopback throughput is noisy run to run; best-of-N per mode keeps
    // the off/sampled comparison from being dominated by scheduler luck,
    // and the modes are *interleaved* across repeats so slow machine
    // drift lands on both sides of the comparison equally. The counters
    // (reused, shed, events) are deterministic across repeats, so
    // keeping the fastest run loses nothing.
    let run_mode = |events: EventsMode| {
        let mut mode_cfg = cfg.clone();
        mode_cfg.events = events;
        run_daemon_bench(&mode_cfg).map_err(|e| ArgError(format!("bench failed: {e}")))
    };
    let keep_best = |best: &mut Option<coopcache_net::DaemonBenchReport>,
                     r: coopcache_net::DaemonBenchReport| {
        if best.as_ref().is_none_or(|b| r.req_per_sec > b.req_per_sec) {
            *best = Some(r);
        }
    };
    let mut off = None;
    let mut sampled = None;
    for _ in 0..repeat {
        if run_off {
            keep_best(&mut off, run_mode(EventsMode::Off)?);
        }
        if run_sampled {
            keep_best(&mut sampled, run_mode(EventsMode::Sampled { seed, rate })?);
        }
    }

    let mut headers = vec!["metric".to_owned()];
    if off.is_some() {
        headers.push("events off".to_owned());
    }
    if sampled.is_some() {
        headers.push(format!("sampled {rate}/1000"));
    }
    let mut table = Table::new(headers);
    let reports: Vec<&coopcache_net::DaemonBenchReport> = [off.as_ref(), sampled.as_ref()]
        .into_iter()
        .flatten()
        .collect();
    let mut metric = |name: &str, value: &dyn Fn(&coopcache_net::DaemonBenchReport) -> String| {
        let mut cells = vec![name.to_owned()];
        cells.extend(reports.iter().map(|r| value(r)));
        table.row(cells);
    };
    metric("requests", &|r| r.requests.to_string());
    metric("clients x pipeline", &|_| {
        format!("{} x {}", cfg.clients, cfg.pipeline)
    });
    metric("elapsed (ms)", &|r| (r.elapsed_us / 1_000).to_string());
    metric("req/s", &|r| r.req_per_sec.to_string());
    metric("p50 latency (us)", &|r| r.p50_us.to_string());
    metric("p99 latency (us)", &|r| r.p99_us.to_string());
    metric("connections reused", &|r| r.connections_reused.to_string());
    metric("admission shed", &|r| r.admission_shed.to_string());
    metric("events emitted", &|r| r.events_emitted.to_string());
    write_out(out, table.to_string())?;

    // With both modes measured, the headline number: how much throughput
    // the always-on sampled telemetry pipeline costs.
    let overhead_pct = match (&off, &sampled) {
        (Some(o), Some(s)) if o.req_per_sec > 0 => {
            let o_rps = o.req_per_sec as f64;
            Some((o_rps - s.req_per_sec as f64) / o_rps * 100.0)
        }
        _ => None,
    };
    if let (Some(pct), Some(s)) = (overhead_pct, &sampled) {
        write_out(
            out,
            format!(
                "sampled telemetry overhead: {pct:+.2}% req/s ({} events emitted)\n",
                s.events_emitted
            ),
        )?;
    }

    if let Some(path) = args.get("json") {
        // The standard results/ experiment shape, mergeable by
        // scripts/bench.sh. Throughput varies run to run (like
        // bench_core), so bench-diff treats drift here as advisory.
        let row = |label: &str, r: &coopcache_net::DaemonBenchReport| {
            format!(
                r#"["{label}","{}","{}","{}","{}","{}","{}"]"#,
                r.req_per_sec,
                r.p50_us,
                r.p99_us,
                r.connections_reused,
                r.admission_shed,
                r.events_emitted,
            )
        };
        let rows: Vec<String> = off
            .iter()
            .map(|r| row("pipelined", r))
            .chain(sampled.iter().map(|r| row("pipelined-sampled", r)))
            .collect();
        let record = format!(
            concat!(
                r#"{{"id":"bench_daemon","title":"live daemon loopback throughput","#,
                r#""trace":"synthetic uniform, {docs} docs x {size}B","#,
                r#""headers":["workload","req/s","p50 us","p99 us","reused","shed","events"],"#,
                r#""rows":[{rows}]}}"#,
                "\n"
            ),
            docs = cfg.docs,
            size = cfg.doc_size,
            rows = rows.join(","),
        );
        std::fs::write(path, record).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        write_out(out, format!("wrote {path}\n"))?;
    }
    if smoke {
        if reports.iter().any(|r| r.connections_reused == 0) {
            return Err(ArgError(
                "bench-daemon --smoke: no connection reuse observed (pooled transport broken?)"
                    .into(),
            ));
        }
        if let Some(s) = &sampled {
            if s.events_emitted == 0 {
                return Err(ArgError(
                    "bench-daemon --smoke: sampled run emitted no events (telemetry plane dead?)"
                        .into(),
                ));
            }
        }
        // Generous smoke bound — the <=5% acceptance number comes from
        // the full-size scripts/bench.sh run; tiny smoke runs are noisy,
        // and debug builds amplify the per-event cost past any useful
        // threshold, so the gate only bites in release builds.
        if let Some(pct) = overhead_pct.filter(|_| !cfg!(debug_assertions)) {
            if pct > 50.0 {
                return Err(ArgError(format!(
                    "bench-daemon --smoke: sampled telemetry halved throughput ({pct:+.1}%)"
                )));
            }
        }
    }
    Ok(())
}

/// The `bench-trend` subcommand: collates two or more snapshots (oldest
/// first) into one line per numeric cell showing how it moved across
/// the sequence. Advisory by design, like `bench-diff`: drift is shown,
/// only unreadable snapshots are errors.
fn cmd_bench_trend<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    args.expect_only(&["files"])?;
    let raw = args
        .get("files")
        .ok_or_else(|| ArgError("bench-trend requires --files PATH,PATH,...".into()))?;
    let paths: Vec<&str> = raw
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if paths.len() < 2 {
        return Err(ArgError(
            "bench-trend needs at least two --files snapshots".into(),
        ));
    }
    let mut names = Vec::new();
    let mut snapshots = Vec::new();
    for path in &paths {
        let (name, experiments) = load_bench(path)?;
        names.push(name);
        snapshots.push(experiments);
    }
    write_out(out, format!("bench-trend: {}\n", names.join(" -> ")))?;
    let Some(newest) = snapshots.last() else {
        return Ok(());
    };
    let mut lines = 0usize;
    for exp in newest {
        for (key, cells) in &exp.rows {
            for (i, cell) in cells.iter().enumerate() {
                if bench_cell_value(cell).is_none() {
                    continue;
                }
                let column = exp.headers.get(i).map_or("?", String::as_str);
                let series: Vec<String> = snapshots
                    .iter()
                    .map(|experiments| {
                        experiments
                            .iter()
                            .find(|e| e.id == exp.id)
                            .and_then(|e| e.rows.iter().find(|(k, _)| k == key))
                            .and_then(|(_, cells)| cells.get(i))
                            .cloned()
                            .unwrap_or_else(|| "-".into())
                    })
                    .collect();
                let delta = series
                    .iter()
                    .find_map(|c| bench_cell_value(c))
                    .zip(bench_cell_value(&series[series.len() - 1]))
                    .map_or(String::new(), |(first, last)| {
                        format!(" ({:+.2})", last - first)
                    });
                write_out(
                    out,
                    format!(
                        "  {} / {key} / {column}: {}{delta}\n",
                        exp.id,
                        series.join(" -> ")
                    ),
                )?;
                lines += 1;
            }
        }
    }
    write_out(out, format!("{lines} cell trend(s)\n"))
}

/// Parses a trace id: decimal, or hex with an `0x` prefix (daemon trace
/// ids embed the cache id in the top bits, so hex is the natural form).
fn parse_trace_id(raw: &str) -> Result<u64, ArgError> {
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    parsed.map_err(|e| ArgError(format!("--id {raw:?}: {e}")))
}

fn cmd_trace<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    use coopcache_obs::TraceAssembler;
    args.expect_only(&["events", "id", "seq", "times"])?;
    let path = args
        .get("events")
        .ok_or_else(|| ArgError("trace requires --events PATH".into()))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let mut assembler = TraceAssembler::new();
    assembler
        .observe_jsonl(&text)
        .map_err(|e| ArgError(format!("{path}: {e}")))?;
    let with_times = parse_bool("times", args.get("times").unwrap_or("false"))?;
    match (args.get("id"), args.get("seq")) {
        (Some(_), Some(_)) => Err(ArgError("pass --id or --seq, not both".into())),
        (Some(raw), None) => {
            let id = parse_trace_id(raw)?;
            let rendered = assembler
                .render(id, with_times)
                .ok_or_else(|| ArgError(format!("no trace {raw} in {path}")))?;
            write_out(out, rendered)
        }
        (None, Some(raw)) => {
            let seq: u64 = raw
                .parse()
                .map_err(|e| ArgError(format!("--seq {raw:?}: {e}")))?;
            let ids = assembler.trace_ids_for_seq(seq);
            if ids.is_empty() {
                return Err(ArgError(format!(
                    "no trace with request seq {seq} in {path}"
                )));
            }
            for id in ids {
                if let Some(rendered) = assembler.render(id, with_times) {
                    write_out(out, rendered)?;
                }
            }
            Ok(())
        }
        (None, None) => {
            if assembler.trace_ids().is_empty() {
                return Err(ArgError(format!("no spans in {path}")));
            }
            write_out(out, assembler.render_all(with_times))
        }
    }
}

/// Both optional simulate observers behind one `EventSink`, so a single
/// handle feeds the JSONL stream and the histogram summary.
struct SimulateSink {
    jsonl: Option<JsonlSink<std::io::BufWriter<std::fs::File>>>,
    summary: Option<HistogramSink>,
}

impl EventSink for SimulateSink {
    fn emit(&mut self, event: &Event) {
        if let Some(jsonl) = &mut self.jsonl {
            jsonl.emit(event);
        }
        if let Some(summary) = &mut self.summary {
            summary.emit(event);
        }
    }
}

fn parse_bool(flag: &str, value: &str) -> Result<bool, ArgError> {
    match value {
        "true" | "yes" | "1" => Ok(true),
        "false" | "no" | "0" => Ok(false),
        other => Err(ArgError(format!(
            "--{flag} {other:?}: expected true or false"
        ))),
    }
}

fn cmd_simulate<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    args.expect_only(&[
        "trace",
        "profile",
        "aggregate",
        "caches",
        "scheme",
        "policy",
        "discovery",
        "ttl",
        "warmup",
        "events",
        "event-summary",
    ])?;
    let trace = load_trace(args)?;
    let aggregate = parse_size(args.get("aggregate").unwrap_or("10MB"))?;
    let mut cfg = SimConfig::new(aggregate)
        .with_group_size(args.get_or("caches", 4u16)?)
        .with_scheme(parse_scheme(args.get("scheme").unwrap_or("ea"))?)
        .with_policy(parse_policy(args.get("policy").unwrap_or("lru"))?)
        .with_discovery(parse_discovery(args.get("discovery").unwrap_or("icp"))?);
    if let Some(ttl) = args.get("ttl") {
        cfg = cfg.with_ttl(DurationMs::from_secs(
            ttl.parse()
                .map_err(|e| ArgError(format!("--ttl {ttl:?}: {e}")))?,
        ));
    }
    let warmup = args.get_or("warmup", 0.0f64)?;
    if !(0.0..1.0).contains(&warmup) {
        return Err(ArgError("--warmup must be in [0, 1)".into()));
    }
    cfg = cfg.with_warmup_fraction(warmup);

    let events_path = args.get("events");
    let want_summary = parse_bool(
        "event-summary",
        args.get("event-summary").unwrap_or("false"),
    )?;
    let (report, sink) = if events_path.is_some() || want_summary {
        let jsonl = events_path
            .map(|path| {
                let file = std::fs::File::create(path)
                    .map_err(|e| ArgError(format!("cannot create {path}: {e}")))?;
                Ok::<_, ArgError>(JsonlSink::new(std::io::BufWriter::new(file)))
            })
            .transpose()?;
        let sink = std::sync::Arc::new(std::sync::Mutex::new(SimulateSink {
            jsonl,
            summary: want_summary.then(HistogramSink::new),
        }));
        let handle = SinkHandle::from_arc(std::sync::Arc::clone(&sink));
        let report = run_with_sink(&cfg, &trace, Some(handle));
        // The runner's group is gone, so ours is the last handle.
        let sink = std::sync::Arc::try_unwrap(sink)
            .map_err(|_| ArgError("event sink is still shared after the run".into()))?
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        (report, Some(sink))
    } else {
        (run(&cfg, &trace), None)
    };
    let mut table = Table::new(vec!["metric", "value"]);
    table.row(vec!["configuration".into(), cfg.to_string()]);
    table.row(vec!["requests".into(), report.metrics.requests.to_string()]);
    table.row(vec!["hit rate %".into(), pct(report.metrics.hit_rate())]);
    table.row(vec![
        "byte hit rate %".into(),
        pct(report.metrics.byte_hit_rate()),
    ]);
    table.row(vec![
        "local / remote / miss %".into(),
        format!(
            "{} / {} / {}",
            pct(report.metrics.local_hit_rate()),
            pct(report.metrics.remote_hit_rate()),
            pct(report.metrics.miss_rate())
        ),
    ]);
    table.row(vec![
        "est. latency (ms)".into(),
        format!("{:.0}", report.estimated_latency_ms),
    ]);
    table.row(vec![
        "avg expiration age (s)".into(),
        report
            .avg_expiration_age_ms
            .map_or("-".into(), |ms| format!("{:.1}", ms / 1e3)),
    ]);
    table.row(vec![
        "messages / request".into(),
        format!(
            "{:.2}",
            report
                .protocol
                .messages_per_request(report.metrics.requests)
        ),
    ]);
    table.row(vec![
        "replicated doc slots".into(),
        report.replica_overhead().to_string(),
    ]);
    write_out(out, table.to_string())?;
    if let Some(sink) = sink {
        if let Some(jsonl) = sink.jsonl {
            let lines = jsonl
                .finish()
                .map_err(|e| ArgError(format!("--events write failed: {e}")))?;
            let path = events_path.expect("jsonl sink implies --events");
            write_out(out, format!("wrote {lines} events to {path}\n"))?;
        }
        if let Some(summary) = sink.summary {
            write_out(out, summary.render_summary())?;
        }
    }
    Ok(())
}

fn cmd_sweep<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    args.expect_only(&["trace", "profile", "caches"])?;
    let trace = load_trace(args)?;
    let base = SimConfig::new(ByteSize::ZERO).with_group_size(args.get_or("caches", 4u16)?);
    let mut table = Table::new(vec![
        "aggregate",
        "ad-hoc hit %",
        "EA hit %",
        "gain (pp)",
        "ad-hoc lat ms",
        "EA lat ms",
    ]);
    for p in capacity_sweep(&base, &PAPER_CACHE_SIZES, &trace) {
        table.row(vec![
            p.aggregate.to_string(),
            pct(p.adhoc.metrics.hit_rate()),
            pct(p.ea.metrics.hit_rate()),
            format!("{:+.2}", p.hit_rate_gain() * 100.0),
            format!("{:.0}", p.adhoc.estimated_latency_ms),
            format!("{:.0}", p.ea.estimated_latency_ms),
        ]);
    }
    write_out(out, table.to_string())
}

/// The `--chaos` fault mix: a bit of every fault class, spread over the
/// non-zero daemons, all drawn from one seed.
fn chaos_plan(seed: u64, caches: u16) -> FaultPlan {
    let c = |i: u16| CacheId::new(i % caches);
    FaultPlan::seeded(seed)
        .rule(c(1), FaultKind::DropIcpReply, FaultMode::Probability(25))
        .rule(c(1), FaultKind::TruncateDocBody, FaultMode::Probability(25))
        .rule(c(2), FaultKind::RefuseDoc, FaultMode::Probability(25))
        .rule(c(2), FaultKind::ResetDoc, FaultMode::Probability(15))
}

fn cmd_serve<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    use std::sync::{Arc, Mutex};
    use std::time::Duration;
    args.expect_only(&[
        "caches",
        "capacity",
        "scheme",
        "requests",
        "chaos",
        "kill-after",
        "events",
    ])?;
    let caches = args.get_or("caches", 3u16)?;
    let capacity = parse_size(args.get("capacity").unwrap_or("128KB"))?;
    let scheme = parse_scheme(args.get("scheme").unwrap_or("ea"))?;
    let requests = args.get_or("requests", 300u64)?;
    let chaos: Option<u64> = args
        .get("chaos")
        .map(|s| {
            s.parse()
                .map_err(|e| ArgError(format!("--chaos {s:?}: {e}")))
        })
        .transpose()?;
    let kill_after: Option<u64> = args
        .get("kill-after")
        .map(|s| {
            s.parse()
                .map_err(|e| ArgError(format!("--kill-after {s:?}: {e}")))
        })
        .transpose()?;
    let mut config = ClusterConfig::new(caches, capacity, scheme);
    if let Some(seed) = chaos {
        // A short ICP deadline keeps a run against silent peers brisk.
        config = config
            .faults(chaos_plan(seed, caches))
            .icp_timeout(Duration::from_millis(80));
    }
    let faulty = chaos.is_some() || kill_after.is_some();
    let events_path = args.get("events");
    let mut cluster = LoopbackCluster::start_with_config(config)
        .map_err(|e| ArgError(format!("cluster start failed: {e}")))?;
    let sink = if faulty || events_path.is_some() {
        let jsonl = events_path
            .map(|path| {
                let file = std::fs::File::create(path)
                    .map_err(|e| ArgError(format!("cannot create {path}: {e}")))?;
                Ok::<_, ArgError>(JsonlSink::new(std::io::BufWriter::new(file)))
            })
            .transpose()?;
        let sink = Arc::new(Mutex::new(SimulateSink {
            jsonl,
            summary: Some(HistogramSink::new()),
        }));
        cluster.set_sink(SinkHandle::from_arc(Arc::clone(&sink)));
        Some(sink)
    } else {
        None
    };
    write_out(
        out,
        format!("started {caches} daemons ({capacity} each, {scheme} placement)\n"),
    )?;
    write_out(
        out,
        format!(
            "doc endpoints: {}\n",
            cluster
                .doc_addrs()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" ")
        ),
    )?;
    if let Some(seed) = chaos {
        write_out(out, format!("chaos on (seed {seed})\n"))?;
    }
    // The workload runs in a block whose error is *held*, not returned:
    // the cluster must be shut down and the event sink finished (its
    // buffered bytes flushed, its I/O errors surfaced) on every path,
    // or a failed run silently truncates the --events file.
    let workload = (|| -> Result<(), ArgError> {
        let mut rng = Rng::seed_from(7);
        let mut hits = 0u64;
        for i in 0..requests {
            if kill_after == Some(i) && caches > 1 {
                let victim = usize::from(caches) - 1;
                cluster.kill(victim);
                write_out(out, format!("killed daemon {victim} after {i} requests\n"))?;
            }
            let doc = DocId::new(rng.next_below(64) + 1);
            let size = ByteSize::from_kb(1 + rng.next_below(4));
            let outcome = cluster
                .request((i % u64::from(caches)) as usize, doc, size)
                .map_err(|e| ArgError(format!("request failed: {e}")))?;
            if outcome.is_hit() {
                hits += 1;
            }
        }
        write_out(
            out,
            format!(
                "served {requests} requests over real sockets: {hits} hits, {} origin fetches\n",
                cluster.origin_fetches()
            ),
        )?;
        // Per-daemon shutdown summary: measured wall-clock latency by serve
        // source, and whichever peers are still under quarantine.
        for idx in 0..cluster.len() {
            let daemon = cluster.daemon(idx);
            let latency: Vec<String> = daemon
                .latency_snapshots()
                .into_iter()
                .map(|(source, s)| {
                    format!("{source} p50={}us p99={}us (n={})", s.p50, s.p99, s.count)
                })
                .collect();
            let latency = if latency.is_empty() {
                "no requests".into()
            } else {
                latency.join(", ")
            };
            let quarantined = daemon.quarantined_peers();
            let quarantined = if quarantined.is_empty() {
                "none".into()
            } else {
                quarantined
                    .iter()
                    .map(|id| id.as_u16().to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            write_out(
                out,
                format!("daemon {idx}: {latency}; quarantined: {quarantined}\n"),
            )?;
        }
        if faulty {
            // Format under the lock, write after it drops: daemon threads are
            // still emitting into this sink, and console I/O under the shared
            // guard is exactly the deadlock class the lock-blocking lint flags.
            let fault_line = sink.as_ref().and_then(|sink| {
                let agg = sink
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                agg.summary.as_ref().map(|summary| {
                    format!(
                        "faults absorbed: {} peer faults, {} failovers, {} quarantines, {} loop errors — 0 client errors\n",
                        summary.count(EventKind::PeerFault),
                        summary.count(EventKind::Failover),
                        summary.count(EventKind::PeerQuarantined),
                        summary.count(EventKind::ServerLoopError),
                    )
                })
            });
            if let Some(line) = fault_line {
                write_out(out, line)?;
            }
        }
        Ok(())
    })();
    cluster.shutdown();
    if workload.is_ok() {
        write_out(out, "cluster shut down cleanly\n")?;
    }
    let finish = if let Some(sink) = sink {
        // The daemons are gone, so this is the last handle to the sink.
        let sink = Arc::try_unwrap(sink)
            .map_err(|_| ArgError("event sink is still shared after shutdown".into()))?
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match sink.jsonl.map(JsonlSink::finish) {
            Some(Ok(lines)) => {
                let path = events_path.expect("jsonl sink implies --events");
                write_out(out, format!("wrote {lines} events to {path}\n"))?;
                Ok(())
            }
            Some(Err(e)) => {
                let path = events_path.expect("jsonl sink implies --events");
                // Warn on stderr too: with --events the primary output is
                // the file, and a truncated file must not look complete.
                eprintln!("warning: {path} is truncated: {e}");
                Err(ArgError(format!("--events {path}: write failed: {e}")))
            }
            None => Ok(()),
        }
    } else {
        Ok(())
    };
    workload.and(finish)
}

fn cmd_analyze<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    use coopcache_analysis::{belady_min, PopularityProfile, ReuseProfile, SharingProfile};
    args.expect_only(&["trace", "profile", "aggregate"])?;
    let trace = load_trace(args)?;
    let aggregate = parse_size(args.get("aggregate").unwrap_or("10MB"))?;
    let docs: Vec<_> = trace.iter().map(|r| r.doc).collect();
    let reuse = ReuseProfile::compute(docs.iter().copied());
    let pop = PopularityProfile::compute(docs.iter().copied());
    let sharing = SharingProfile::compute(trace.iter());
    let sized: Vec<_> = trace.iter().map(|r| (r.doc, r.size)).collect();
    let bound = belady_min(&sized, aggregate);

    let mut table = Table::new(vec!["property", "value"]);
    table.row(vec!["requests".into(), trace.len().to_string()]);
    table.row(vec![
        "unique documents".into(),
        pop.unique_docs().to_string(),
    ]);
    table.row(vec![
        "zipf alpha (fit)".into(),
        pop.zipf_alpha_fit()
            .map_or("-".into(), |a| format!("{a:.2}")),
    ]);
    table.row(vec!["top-10 doc share %".into(), pct(pop.top_share(10))]);
    table.row(vec![
        "one-timer docs %".into(),
        pct(pop.one_timer_fraction()),
    ]);
    table.row(vec![
        "mean stack distance".into(),
        reuse
            .mean_distance()
            .map_or("-".into(), |d| format!("{d:.0} docs")),
    ]);
    for slots in [16usize, 256, 4_096] {
        table.row(vec![
            format!("LRU hit % @ {slots} docs"),
            pct(reuse.lru_hit_rate(slots)),
        ]);
    }
    table.row(vec![
        "cross-client share of re-refs %".into(),
        pct(sharing.cross_client_share()),
    ]);
    table.row(vec![
        format!("Belady-MIN hit % @ {aggregate}"),
        pct(bound.hit_rate()),
    ]);
    write_out(out, table.to_string())
}

fn cmd_import<W: Write>(args: &ParsedArgs, out: &mut W) -> Result<(), ArgError> {
    use coopcache_trace::{parse_log, LogFormat};
    args.expect_only(&["log", "format", "out"])?;
    let log_path = args
        .get("log")
        .ok_or_else(|| ArgError("import requires --log PATH".into()))?;
    let out_path = args
        .get("out")
        .ok_or_else(|| ArgError("import requires --out PATH".into()))?;
    let format = match args.get("format").unwrap_or("squid") {
        "squid" => LogFormat::SquidNative,
        "clf" => LogFormat::CommonLog,
        other => return Err(ArgError(format!("unknown format {other:?} (squid, clf)"))),
    };
    let file = std::fs::File::open(log_path)
        .map_err(|e| ArgError(format!("cannot open {log_path}: {e}")))?;
    let parsed =
        parse_log(file, format, ByteSize::from_kb(4)).map_err(|e| ArgError(e.to_string()))?;
    let out_file = std::fs::File::create(out_path)
        .map_err(|e| ArgError(format!("cannot create {out_path}: {e}")))?;
    write_trace(std::io::BufWriter::new(out_file), &parsed.trace)
        .map_err(|e| ArgError(format!("write failed: {e}")))?;
    write_out(
        out,
        format!(
            "imported {} records ({} urls, {} clients, {} lines skipped) to {out_path}\n",
            parsed.trace.len(),
            parsed.urls.len(),
            parsed.clients.len(),
            parsed.skipped_lines
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_cmd(argv: &[&str]) -> Result<String, ArgError> {
        let args = ParsedArgs::parse(argv.iter().copied())?;
        let mut out = Vec::new();
        dispatch(&args, &mut out)?;
        Ok(String::from_utf8(out).expect("commands emit utf-8"))
    }

    #[test]
    fn help_prints_usage() {
        let text = run_cmd(&["help"]).unwrap();
        assert!(text.contains("USAGE"));
        assert!(text.contains("simulate"));
    }

    #[test]
    fn unknown_command_is_reported() {
        let e = run_cmd(&["frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("frobnicate"));
    }

    #[test]
    fn gen_stats_simulate_pipeline() {
        let dir = std::env::temp_dir().join("coopcache_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.trace");
        let path_s = path.to_str().unwrap();

        let text = run_cmd(&[
            "gen",
            "--profile",
            "small",
            "--requests",
            "2000",
            "--out",
            path_s,
        ])
        .unwrap();
        assert!(text.contains("2000 records"));

        let text = run_cmd(&["stats", "--trace", path_s]).unwrap();
        assert!(text.contains("requests"));
        assert!(text.contains("2000"));

        let text = run_cmd(&[
            "simulate",
            "--trace",
            path_s,
            "--aggregate",
            "200KB",
            "--scheme",
            "ea",
        ])
        .unwrap();
        assert!(text.contains("hit rate %"));
        assert!(text.contains("ea placement"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn simulate_flag_validation() {
        assert!(run_cmd(&["simulate", "--scheme", "best"]).is_err());
        assert!(run_cmd(&["simulate", "--warmup", "2.0"]).is_err());
        assert!(run_cmd(&["simulate", "--bogus", "1"]).is_err());
        assert!(run_cmd(&["stats", "--trace", "/nonexistent/x"]).is_err());
        assert!(
            run_cmd(&["gen", "--profile", "small"]).is_err(),
            "--out required"
        );
    }

    #[test]
    fn simulate_with_all_knobs() {
        let text = run_cmd(&[
            "simulate",
            "--profile",
            "small",
            "--aggregate",
            "1MB",
            "--caches",
            "8",
            "--scheme",
            "ea-tie-store",
            "--policy",
            "lfu",
            "--discovery",
            "digest:600",
            "--ttl",
            "86400",
            "--warmup",
            "0.2",
        ])
        .unwrap();
        assert!(text.contains("8 caches"));
        assert!(text.contains("lfu replacement"));
    }

    #[test]
    fn simulate_streams_events_and_summary() {
        let dir = std::env::temp_dir().join("coopcache_cli_events");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let path_s = path.to_str().unwrap();
        let text = run_cmd(&[
            "simulate",
            "--profile",
            "small",
            "--aggregate",
            "200KB",
            "--events",
            path_s,
            "--event-summary",
            "true",
        ])
        .unwrap();
        assert!(text.contains("hit rate %"));
        assert!(text.contains(&format!("events to {path_s}")), "{text}");
        assert!(text.contains("event summary:"), "{text}");
        let stream = std::fs::read_to_string(&path).unwrap();
        let first = stream.lines().next().unwrap();
        assert!(first.starts_with("{\"ev\":"), "{first}");
        // One request event per trace record, at least.
        assert!(
            stream.lines().count() > 20_000,
            "{}",
            stream.lines().count()
        );
        // Replaying the identical run yields a byte-identical stream.
        let path2 = dir.join("events2.jsonl");
        run_cmd(&[
            "simulate",
            "--profile",
            "small",
            "--aggregate",
            "200KB",
            "--events",
            path2.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(stream, std::fs::read_to_string(&path2).unwrap());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&path2).unwrap();
    }

    #[test]
    fn event_summary_flag_is_validated() {
        assert!(run_cmd(&["simulate", "--event-summary", "maybe"]).is_err());
    }

    #[test]
    fn sweep_outputs_five_rows() {
        let text = run_cmd(&["sweep", "--profile", "small"]).unwrap();
        assert!(text.contains("100KB"));
        assert!(text.contains("1GB"));
        assert_eq!(text.lines().count(), 7); // header + rule + 5 sizes
    }

    #[test]
    fn analyze_reports_workload_properties() {
        let text = run_cmd(&["analyze", "--profile", "small", "--aggregate", "1MB"]).unwrap();
        assert!(text.contains("zipf alpha"));
        assert!(text.contains("Belady-MIN"));
        assert!(text.contains("cross-client"));
    }

    #[test]
    fn import_converts_a_squid_log() {
        let dir = std::env::temp_dir().join("coopcache_cli_import");
        std::fs::create_dir_all(&dir).unwrap();
        let log = dir.join("access.log");
        std::fs::write(
            &log,
            "894395924.192 10 h1 TCP_MISS/200 3448 GET http://x/a - D/x t\n\
             894395925.000 10 h2 TCP_HIT/200 3448 GET http://x/a - N/- t\n",
        )
        .unwrap();
        let out_path = dir.join("imported.trace");
        let text = run_cmd(&[
            "import",
            "--log",
            log.to_str().unwrap(),
            "--out",
            out_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(text.contains("imported 2 records"), "{text}");
        // The imported trace is simulate-able.
        let text = run_cmd(&["simulate", "--trace", out_path.to_str().unwrap()]).unwrap();
        assert!(text.contains("hit rate %"));
        std::fs::remove_file(log).unwrap();
        std::fs::remove_file(out_path).unwrap();
    }

    #[test]
    fn serve_runs_a_live_cluster() {
        let text = run_cmd(&["serve", "--caches", "2", "--requests", "50"]).unwrap();
        assert!(text.contains("served 50 requests"));
        assert!(text.contains("doc endpoints: "));
        // The shutdown summary surfaces per-source latency and quarantine.
        assert!(text.contains("daemon 0: local p50="), "{text}");
        assert!(text.contains("quarantined: none"));
        assert!(text.contains("shut down cleanly"));
    }

    #[test]
    fn serve_streams_events_and_trace_renders_them() {
        let dir = std::env::temp_dir().join("coopcache_cli_serve_trace");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let path_s = path.to_str().unwrap();
        let text = run_cmd(&[
            "serve",
            "--caches",
            "2",
            "--requests",
            "40",
            "--events",
            path_s,
        ])
        .unwrap();
        assert!(text.contains("events to"), "{text}");

        // The full stream assembles into one tree per request.
        let text = run_cmd(&["trace", "--events", path_s]).unwrap();
        assert!(text.contains("trace "), "{text}");
        assert!(text.contains("request"), "{text}");
        assert!(text.contains("status="), "{text}");

        // Selecting by request seq narrows to the matching trees, and
        // --times appends offsets.
        let text = run_cmd(&["trace", "--events", path_s, "--seq", "0"]).unwrap();
        assert!(text.starts_with("trace "), "{text}");
        let timed =
            run_cmd(&["trace", "--events", path_s, "--seq", "0", "--times", "true"]).unwrap();
        assert!(timed.contains("us"), "{timed}");

        // Selecting the rendered id directly returns the same tree.
        let first_id = text.split_whitespace().nth(1).unwrap().to_string();
        let by_id = run_cmd(&["trace", "--events", path_s, "--id", &first_id]).unwrap();
        assert!(text.starts_with(&by_id), "{text}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trace_flag_validation() {
        assert!(run_cmd(&["trace"]).is_err(), "--events required");
        assert!(run_cmd(&["trace", "--events", "/nonexistent/x"]).is_err());
        let dir = std::env::temp_dir().join("coopcache_cli_trace_flags");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        let path_s = path.to_str().unwrap();
        assert!(run_cmd(&["trace", "--events", path_s]).is_err(), "no spans");
        assert!(run_cmd(&["trace", "--events", path_s, "--id", "1", "--seq", "1"]).is_err());
        assert!(run_cmd(&["trace", "--events", path_s, "--id", "zz"]).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_scrapes_a_live_daemon() {
        use coopcache_core::PlacementScheme;
        let cluster =
            LoopbackCluster::start(1, ByteSize::from_kb(64), PlacementScheme::Ea).unwrap();
        cluster
            .request(0, DocId::new(1), ByteSize::from_kb(1))
            .unwrap();
        let addr = cluster.doc_addrs()[0].to_string();

        let table = run_cmd(&["stats", "--addr", &addr]).unwrap();
        assert!(table.contains("events.request"), "{table}");
        assert!(table.contains("latency.origin"), "{table}");
        assert!(table.contains("quarantined"), "{table}");

        let json = run_cmd(&["stats", "--addr", &addr, "--format", "json"]).unwrap();
        assert!(json.starts_with("{\"cache\":0,"), "{json}");

        let prom = run_cmd(&["stats", "--addr", &addr, "--format", "prom"]).unwrap();
        assert!(
            prom.contains("coopcache_events_total{cache=\"0\",kind=\"request\"} 1"),
            "{prom}"
        );
        assert!(
            prom.contains("coopcache_quarantined_peers{cache=\"0\"} 0"),
            "{prom}"
        );
        cluster.shutdown();
    }

    #[test]
    fn stats_scrape_flag_validation() {
        assert!(run_cmd(&["stats", "--addr", "not-an-addr"]).is_err());
        // An unreachable daemon is a clean error, not a hang: port 1 on
        // localhost is never listening.
        let e = run_cmd(&["stats", "--addr", "127.0.0.1:1", "--timeout-ms", "200"]).unwrap_err();
        assert!(e.to_string().contains("scrape of"), "{e}");
        assert!(run_cmd(&["stats", "--addr", "127.0.0.1:1", "--format", "xml"]).is_err());
    }

    #[test]
    fn top_scrapes_a_live_cluster_and_isolates_dead_nodes() {
        use coopcache_core::PlacementScheme;
        let cluster =
            LoopbackCluster::start(2, ByteSize::from_kb(64), PlacementScheme::Ea).unwrap();
        for i in 0..6u64 {
            cluster
                .request(
                    (i % 2) as usize,
                    DocId::new(i % 3 + 1),
                    ByteSize::from_kb(1),
                )
                .unwrap();
        }
        for idx in 0..cluster.len() {
            cluster.daemon(idx).sample_now();
        }
        let addrs = cluster
            .doc_addrs()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let text = run_cmd(&["top", "--addrs", &addrs, "--once", "true"]).unwrap();
        assert!(text.contains("series: 2 node(s)"), "{text}");
        assert!(text.contains("req/s"), "{text}");
        assert!(text.contains("group"), "{text}");
        assert!(
            !text.contains("\x1b[2J"),
            "--once must not clear the screen"
        );

        // A bounded live view clears between frames instead.
        let live = run_cmd(&[
            "top",
            "--addrs",
            &addrs,
            "--frames",
            "2",
            "--refresh-ms",
            "10",
        ])
        .unwrap();
        assert_eq!(live.matches("\x1b[2J").count(), 2, "{live:?}");

        // A dead node is an error line, not an abort: port 1 is closed.
        let mixed = format!("{addrs},127.0.0.1:1");
        let text = run_cmd(&[
            "top",
            "--addrs",
            &mixed,
            "--once",
            "true",
            "--timeout-ms",
            "200",
        ])
        .unwrap();
        assert!(text.contains("series: 2 node(s)"), "{text}");
        assert!(text.contains("node 127.0.0.1:1:"), "{text}");
        cluster.shutdown();
    }

    #[test]
    fn top_replays_an_event_stream_byte_identically() {
        let dir = std::env::temp_dir().join("coopcache_cli_top_replay");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let path_s = path.to_str().unwrap();
        run_cmd(&[
            "serve",
            "--caches",
            "2",
            "--requests",
            "40",
            "--events",
            path_s,
        ])
        .unwrap();
        let replay = |interval: &str| {
            run_cmd(&["top", "--replay", path_s, "--interval-ms", interval]).unwrap()
        };
        let a = replay("50");
        assert!(a.contains("req/s"), "{a}");
        assert!(a.contains("group"), "{a}");
        // Replayed series carry no gauges, so the occupancy columns stay
        // out of the lean rendering.
        assert!(!a.contains("used_kb"), "{a}");
        assert_eq!(a, replay("50"), "same file must render byte-identically");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn top_flag_validation() {
        assert!(run_cmd(&["top"]).is_err(), "--addrs or --replay required");
        assert!(run_cmd(&["top", "--addrs", "x", "--replay", "y"]).is_err());
        assert!(run_cmd(&["top", "--addrs", "not-an-addr"]).is_err());
        assert!(run_cmd(&["top", "--replay", "/nonexistent/x"]).is_err());
        assert!(run_cmd(&["top", "--addrs", "127.0.0.1:1", "--once", "maybe"]).is_err());
    }

    #[test]
    fn stats_cluster_scrape_survives_chaos_and_a_killed_daemon() {
        use coopcache_core::PlacementScheme;
        use std::time::Duration;
        // Daemon 1 refuses every document connection; stats probes are
        // exempt by design, so its row must still fill in.
        let config = ClusterConfig::new(3, ByteSize::from_kb(64), PlacementScheme::Ea)
            .faults(FaultPlan::seeded(11).rule(
                CacheId::new(1),
                FaultKind::RefuseDoc,
                FaultMode::Always,
            ))
            .icp_timeout(Duration::from_millis(80));
        let mut cluster = LoopbackCluster::start_with_config(config).unwrap();
        for i in 0..9u64 {
            cluster
                .request(
                    (i % 3) as usize,
                    DocId::new(i % 4 + 1),
                    ByteSize::from_kb(1),
                )
                .unwrap();
        }
        cluster.kill(2);
        let addrs = cluster
            .doc_addrs()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");
        let text = run_cmd(&["stats", "--cluster", &addrs, "--timeout-ms", "500"]).unwrap();
        assert!(text.contains("cache 0"), "{text}");
        assert!(text.contains("cache 1"), "{text}");
        assert!(text.contains("error: "), "{text}");
        assert!(text.contains("scraped 2/3 daemons"), "{text}");
        cluster.shutdown();
    }

    #[test]
    fn stats_cluster_flag_validation() {
        assert!(run_cmd(&["stats", "--cluster", ""]).is_err());
        assert!(run_cmd(&["stats", "--cluster", "nope"]).is_err());
    }

    fn write_bench(path: &std::path::Path, ea_hit: &str) -> String {
        let body = format!(
            concat!(
                r#"{{"bench":"BENCH_T","experiments":[{{"id":"fig1","title":"t","#,
                r#""trace":"x","headers":["aggregate","ad-hoc hit %","EA hit %"],"#,
                r#""rows":[["100KB","53.08","{}"],["1MB","76.03","76.18"]]}}]}}"#
            ),
            ea_hit
        );
        std::fs::write(path, &body).unwrap();
        path.to_str().unwrap().to_owned()
    }

    #[test]
    fn bench_diff_reports_deltas_and_identity() {
        let dir = std::env::temp_dir().join("coopcache_cli_bench_diff");
        std::fs::create_dir_all(&dir).unwrap();
        let old = write_bench(&dir.join("old.json"), "54.54");
        let new = write_bench(&dir.join("new.json"), "55.04");

        let same = run_cmd(&["bench-diff", "--old", &old, "--new", &old]).unwrap();
        assert!(same.contains("no differences"), "{same}");

        let diff = run_cmd(&["bench-diff", "--old", &old, "--new", &new]).unwrap();
        assert!(diff.contains("fig1 / 100KB / EA hit %"), "{diff}");
        assert!(diff.contains("54.54 -> 55.04 (+0.50)"), "{diff}");
        assert!(diff.contains("1 differing cell(s)"), "{diff}");

        assert!(run_cmd(&["bench-diff", "--old", &old]).is_err());
        assert!(run_cmd(&["bench-diff", "--old", "/nonexistent/x", "--new", &new]).is_err());
        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not json").unwrap();
        assert!(run_cmd(&[
            "bench-diff",
            "--old",
            &old,
            "--new",
            garbage.to_str().unwrap()
        ])
        .is_err());
    }

    #[test]
    fn bench_daemon_smoke_gates_on_reuse_and_writes_json() {
        let dir = std::env::temp_dir().join("coopcache_cli_bench_daemon");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench_daemon.json");
        let path_s = path.to_str().unwrap();
        let text = run_cmd(&[
            "bench-daemon",
            "--smoke",
            "true",
            "--requests",
            "400",
            "--pipeline",
            "8",
            "--docs",
            "8",
            "--doc-size",
            "64",
            "--json",
            path_s,
        ])
        .unwrap();
        assert!(text.contains("req/s"), "{text}");
        assert!(text.contains("connections reused"), "{text}");
        assert!(text.contains(&format!("wrote {path_s}")), "{text}");
        let record = std::fs::read_to_string(&path).unwrap();
        assert!(record.starts_with("{\"id\":\"bench_daemon\""), "{record}");
        assert!(record.ends_with("}\n"), "{record:?}");
        // The record is one well-formed experiment in the results/ shape.
        let v = parse_json(record.trim()).unwrap();
        assert_eq!(
            v.get("headers")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(7)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bench_daemon_flag_validation() {
        assert!(run_cmd(&["bench-daemon", "--clients", "0"]).is_err());
        assert!(run_cmd(&["bench-daemon", "--smoke", "maybe"]).is_err());
        assert!(run_cmd(&["bench-daemon", "--bogus", "1"]).is_err());
    }

    #[test]
    fn bench_daemon_events_both_measures_overhead() {
        let dir = std::env::temp_dir().join("coopcache_cli_bench_events");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench_daemon.json");
        let path_s = path.to_str().unwrap();
        let text = run_cmd(&[
            "bench-daemon",
            "--smoke",
            "true",
            "--requests",
            "600",
            "--pipeline",
            "8",
            "--docs",
            "8",
            "--doc-size",
            "64",
            "--events",
            "both",
            "--json",
            path_s,
        ])
        .unwrap();
        assert!(text.contains("events off"), "{text}");
        assert!(text.contains("sampled 100/1000"), "{text}");
        assert!(text.contains("events emitted"), "{text}");
        assert!(text.contains("sampled telemetry overhead:"), "{text}");
        let record = std::fs::read_to_string(&path).unwrap();
        assert!(record.contains(r#"["pipelined","#), "{record}");
        assert!(record.contains(r#"["pipelined-sampled","#), "{record}");
        let v = parse_json(record.trim()).unwrap();
        assert_eq!(
            v.get("rows").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        std::fs::remove_file(&path).unwrap();

        assert!(run_cmd(&["bench-daemon", "--events", "sometimes"]).is_err());
    }

    #[test]
    fn bench_trend_collates_snapshots_per_cell() {
        let dir = std::env::temp_dir().join("coopcache_cli_bench_trend");
        std::fs::create_dir_all(&dir).unwrap();
        let a = write_bench(&dir.join("a.json"), "54.54");
        let b = write_bench(&dir.join("b.json"), "55.04");
        let files = format!("{a},{b}");

        let text = run_cmd(&["bench-trend", "--files", &files]).unwrap();
        assert!(text.contains("bench-trend: BENCH_T -> BENCH_T"), "{text}");
        assert!(text.contains("fig1 / 100KB / EA hit %"), "{text}");
        assert!(text.contains("54.54 -> 55.04 (+0.50)"), "{text}");
        // Label cells are not trended; numeric cells are.
        assert!(!text.contains("/ aggregate:"), "{text}");
        assert!(text.ends_with("cell trend(s)\n"), "{text}");

        assert!(run_cmd(&["bench-trend"]).is_err());
        assert!(run_cmd(&["bench-trend", "--files", &a]).is_err());
        assert!(run_cmd(&["bench-trend", "--files", "/nonexistent/x,/nonexistent/y"]).is_err());
    }

    #[test]
    fn top_once_json_emits_the_scraped_rings() {
        use coopcache_core::PlacementScheme;
        let cluster =
            LoopbackCluster::start(1, ByteSize::from_kb(64), PlacementScheme::Ea).unwrap();
        cluster
            .request(0, DocId::new(1), ByteSize::from_kb(1))
            .unwrap();
        cluster.daemon(0).sample_now();
        let addrs = cluster.doc_addrs()[0].to_string();
        let text =
            run_cmd(&["top", "--addrs", &addrs, "--once", "true", "--json", "true"]).unwrap();
        let v = parse_json(text.trim()).unwrap();
        assert_eq!(
            v.get("rings").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(1),
            "{text}"
        );
        assert_eq!(
            v.get("errors")
                .and_then(JsonValue::as_array)
                .map(<[_]>::len),
            Some(0)
        );
        // A live view cannot be JSON: each frame would be a new document.
        assert!(run_cmd(&["top", "--addrs", &addrs, "--json", "true"]).is_err());
        cluster.shutdown();
    }

    #[test]
    fn top_replay_json_is_deterministic() {
        let dir = std::env::temp_dir().join("coopcache_cli_top_replay_json");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let path_s = path.to_str().unwrap();
        run_cmd(&[
            "serve",
            "--caches",
            "2",
            "--requests",
            "30",
            "--events",
            path_s,
        ])
        .unwrap();
        let replay = || {
            run_cmd(&[
                "top",
                "--replay",
                path_s,
                "--interval-ms",
                "50",
                "--json",
                "true",
            ])
            .unwrap()
        };
        let a = replay();
        let v = parse_json(a.trim()).unwrap();
        assert_eq!(
            v.get("rings").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2),
            "{a}"
        );
        assert_eq!(a, replay(), "same file must replay byte-identically");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn health_evaluates_rules_against_a_live_cluster() {
        use coopcache_core::PlacementScheme;
        let cluster =
            LoopbackCluster::start(2, ByteSize::from_kb(64), PlacementScheme::Ea).unwrap();
        for i in 0..6u64 {
            cluster
                .request(
                    (i % 2) as usize,
                    DocId::new(i % 3 + 1),
                    ByteSize::from_kb(1),
                )
                .unwrap();
        }
        for idx in 0..cluster.len() {
            cluster.daemon(idx).sample_now();
        }
        let addrs = cluster
            .doc_addrs()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(",");

        // A hit-rate floor above 1000‰ is unsatisfiable, so it must fire.
        let text = run_cmd(&[
            "health",
            "--addrs",
            &addrs,
            "--hit-floor",
            "1001",
            "--for",
            "1",
        ])
        .unwrap();
        assert!(text.contains("FIRING"), "{text}");
        assert!(text.contains("hit-rate below 1001"), "{text}");
        assert!(
            text.contains("1 rule(s) over 2/2 node(s): 2 firing"),
            "{text}"
        );

        // A satisfiable floor stays quiet.
        let ok = run_cmd(&[
            "health",
            "--addrs",
            &addrs,
            "--hit-floor",
            "0",
            "--for",
            "1",
        ])
        .unwrap();
        assert!(ok.contains(": 0 firing"), "{ok}");

        // JSON mode carries the same verdicts, machine-readable.
        let json = run_cmd(&[
            "health",
            "--addrs",
            &addrs,
            "--hit-floor",
            "1001",
            "--for",
            "1",
            "--json",
            "true",
        ])
        .unwrap();
        let v = parse_json(json.trim()).unwrap();
        let nodes = v.get("nodes").and_then(JsonValue::as_array).unwrap();
        assert_eq!(nodes.len(), 2, "{json}");
        for node in nodes {
            assert_eq!(node.get("firing").and_then(JsonValue::as_u64), Some(1));
            assert!(
                !node
                    .get("alerts")
                    .and_then(JsonValue::as_array)
                    .unwrap()
                    .is_empty(),
                "{json}"
            );
        }

        // A dead node is isolated into an error row, not an abort.
        let mixed = format!("{addrs},127.0.0.1:1");
        let text = run_cmd(&["health", "--addrs", &mixed, "--timeout-ms", "200"]).unwrap();
        assert!(text.contains("error: "), "{text}");
        assert!(text.contains("2/3 node(s)"), "{text}");
        cluster.shutdown();

        // All nodes dead is a real failure.
        assert!(run_cmd(&["health", "--addrs", "127.0.0.1:1", "--timeout-ms", "200"]).is_err());
    }

    #[test]
    fn health_flag_validation() {
        assert!(run_cmd(&["health"]).is_err(), "--addrs required");
        assert!(run_cmd(&["health", "--addrs", "not-an-addr"]).is_err());
        assert!(run_cmd(&["health", "--addrs", "127.0.0.1:1", "--json", "maybe"]).is_err());
        assert!(run_cmd(&["health", "--addrs", "127.0.0.1:1", "--hit-floor", "x"]).is_err());
        assert!(run_cmd(&["health", "--addrs", "127.0.0.1:1", "--frames", "1"]).is_err());
    }

    #[test]
    fn serve_surfaces_event_sink_write_failures() {
        // /dev/full accepts the open and fails every flush with ENOSPC:
        // exactly the truncated---events-file case the exit code must
        // reflect. (Linux-only device, like the rest of the loopback suite.)
        if !std::path::Path::new("/dev/full").exists() {
            return;
        }
        let e = run_cmd(&[
            "serve",
            "--caches",
            "1",
            "--requests",
            "30",
            "--events",
            "/dev/full",
        ])
        .unwrap_err();
        assert!(e.to_string().contains("/dev/full"), "{e}");
        assert!(e.to_string().contains("write failed"), "{e}");
    }

    #[test]
    fn serve_survives_chaos_and_a_killed_daemon() {
        // run_cmd returning Ok is the guarantee under test: every request
        // succeeded despite injected faults and a daemon killed mid-run.
        let text = run_cmd(&[
            "serve",
            "--caches",
            "3",
            "--requests",
            "60",
            "--chaos",
            "7",
            "--kill-after",
            "30",
        ])
        .unwrap();
        assert!(text.contains("chaos on (seed 7)"));
        assert!(text.contains("killed daemon 2 after 30 requests"));
        assert!(text.contains("served 60 requests"));
        assert!(text.contains("0 client errors"));
        assert!(text.contains("shut down cleanly"));
    }
}
