#![forbid(unsafe_code)]
//! `coopcache` — the command-line front end of the workspace.
//!
//! ```sh
//! coopcache gen --profile medium --out campus.trace
//! coopcache stats --trace campus.trace
//! coopcache simulate --trace campus.trace --aggregate 10MB --scheme ea
//! coopcache sweep --profile medium --caches 8
//! coopcache serve --caches 3 --scheme ea
//! ```

mod args;
mod commands;

use args::ParsedArgs;
use commands::{dispatch, USAGE};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        print!("{USAGE}");
        std::process::exit(2);
    }
    let parsed = match ParsedArgs::parse(argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = dispatch(&parsed, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
