//! Mock shared-state primitives for interleaving models.
//!
//! These mirror the shapes the real code uses (`AtomicU64` counters,
//! `Mutex`-guarded structures) but live inside a plain `Clone` model
//! state, so the scheduler can snapshot and restore them freely. Each
//! carries the [`VarId`] it was registered under; models pass that id in
//! step footprints so sleep-set pruning sees the true conflicts.
//!
//! Misuse (double-acquire, releasing a mutex you don't hold) never
//! panics — it latches a `poisoned` flag the model's invariant should
//! assert on, keeping this crate panic-free like the rest of the
//! workspace.

use crate::sched::VarId;

/// A model atomic counter. All operations are sequentially consistent at
/// model granularity — one whole step is atomic, so `fetch_add` here is
/// the *correct* RMW; model a racy read-modify-write as two separate
/// `load`/`store` steps instead.
#[derive(Clone, Debug)]
pub struct MockAtomicU64 {
    value: u64,
    var: VarId,
}

impl MockAtomicU64 {
    /// A new counter registered under footprint variable `var`.
    #[must_use]
    pub fn new(var: VarId, value: u64) -> Self {
        Self { value, var }
    }

    /// The footprint variable this counter was registered under.
    #[must_use]
    pub fn var(&self) -> VarId {
        self.var
    }

    /// Read the current value.
    #[must_use]
    pub fn load(&self) -> u64 {
        self.value
    }

    /// Overwrite the value.
    pub fn store(&mut self, value: u64) {
        self.value = value;
    }

    /// Atomic (at step granularity) add; returns the previous value.
    pub fn fetch_add(&mut self, n: u64) -> u64 {
        let prev = self.value;
        self.value = self.value.wrapping_add(n);
        prev
    }
}

/// A model mutex. Acquisition is modelled as a *guarded* step: guard on
/// [`MockMutex::is_free`], then call [`MockMutex::acquire`] in the step
/// body. The scheduler's deadlock detection then sees blocked acquirers
/// for free.
#[derive(Clone, Debug)]
pub struct MockMutex {
    var: VarId,
    holder: Option<usize>,
    poisoned: bool,
}

impl MockMutex {
    /// A new unlocked mutex registered under footprint variable `var`.
    #[must_use]
    pub fn new(var: VarId) -> Self {
        Self {
            var,
            holder: None,
            poisoned: false,
        }
    }

    /// The footprint variable this mutex was registered under.
    #[must_use]
    pub fn var(&self) -> VarId {
        self.var
    }

    /// True when no thread holds the lock. Use as the acquire guard.
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.holder.is_none()
    }

    /// The thread id currently holding the lock, if any.
    #[must_use]
    pub fn holder(&self) -> Option<usize> {
        self.holder
    }

    /// True once any protocol violation (acquire-while-held, bad release)
    /// has happened. Invariants should assert `!poisoned()`.
    #[must_use]
    pub fn poisoned(&self) -> bool {
        self.poisoned
    }

    /// Take the lock for thread `tid`. Acquiring a held lock poisons the
    /// mutex instead of panicking — a correctly guarded model never does
    /// this, so poisoning means the *model* skipped its `is_free` guard.
    pub fn acquire(&mut self, tid: usize) {
        if self.holder.is_some() {
            self.poisoned = true;
        }
        self.holder = Some(tid);
    }

    /// Release the lock held by thread `tid`. Releasing a lock the thread
    /// does not hold poisons the mutex.
    pub fn release(&mut self, tid: usize) {
        if self.holder != Some(tid) {
            self.poisoned = true;
        }
        self.holder = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomic_fetch_add_returns_previous() {
        let mut a = MockAtomicU64::new(3, 41);
        assert_eq!(a.fetch_add(1), 41);
        assert_eq!(a.load(), 42);
        assert_eq!(a.var(), 3);
    }

    #[test]
    fn mutex_protocol_violations_poison() {
        let mut m = MockMutex::new(0);
        assert!(m.is_free());
        m.acquire(0);
        assert_eq!(m.holder(), Some(0));
        assert!(!m.poisoned());
        m.acquire(1); // double acquire
        assert!(m.poisoned());

        let mut n = MockMutex::new(1);
        n.acquire(0);
        n.release(1); // wrong thread
        assert!(n.poisoned());
    }
}
