#![forbid(unsafe_code)]
//! Bounded model checking for the workspace's concurrency planes.
//!
//! This crate is a zero-dependency, in-tree cousin of CMC/loom-style
//! systematic concurrency testing. A model is a small, deterministic
//! re-statement of a real concurrent component: shared state is a plain
//! `Clone` struct built from [`MockAtomicU64`]/[`MockMutex`] shims, each
//! thread is a finite list of atomic steps ([`MockThread`]), and
//! [`explore`] enumerates *every* interleaving of those steps up to a
//! bounded depth, checking a user invariant after each one.
//!
//! What it can prove: for the modelled step granularity, no interleaving
//! of the given programs violates the invariant or deadlocks. What it
//! cannot prove: anything about code paths, step granularities, or weak
//! memory reorderings that the model does not express — models here are
//! sequentially consistent by construction, which matches the acquire/
//! release-or-stronger discipline enforced by `coopcache-lint`'s
//! `atomic-order` rule on the real code.
//!
//! Exploration is a seeded DFS with sleep-set pruning: commutative step
//! pairs (disjoint read/write footprints) are explored in one order only,
//! which keeps the full search exhaustive while skipping redundant
//! schedules. The invariant itself declares a read footprint to
//! [`explore`]; steps writing those variables are *visible* and never
//! commuted with each other, so the invariant observes every
//! intermediate state it could distinguish — provided its declared
//! footprint is honest, which is part of the model contract just like
//! step footprints. Everything is deterministic for a fixed seed;
//! changing the seed permutes visit order but never the verdict.

mod sched;
mod shim;

pub use sched::{explore, Config, MockThread, Outcome, Step, VarId, CONFLICTS_ALL};
pub use shim::{MockAtomicU64, MockMutex};
