//! The deterministic interleaving scheduler.
//!
//! Threads are finite step lists; [`explore`] runs a depth-first search
//! over every schedule, cloning the model state at each branch point so
//! backtracking is trivial. Sleep sets prune schedules that only reorder
//! independent (footprint-disjoint) steps; the search stays exhaustive
//! over *distinguishable* behaviours, where "distinguishable" includes
//! the invariant: the invariant declares the variables it reads, steps
//! writing any of those variables are *visible*, and two visible steps
//! are never treated as independent — so every intermediate state the
//! invariant could tell apart is checked in some explored schedule. An
//! invariant that reads a variable missing from its declared footprint
//! voids that guarantee, exactly like a step with an under-declared
//! footprint.

use std::collections::BTreeSet;

/// Identifies one shared variable in a step's declared footprint.
///
/// Footprints drive sleep-set pruning: two steps commute when neither
/// writes a variable the other reads or writes. A step whose *guard*
/// reads a variable must declare that variable in `reads` as well —
/// otherwise pruning could skip a schedule in which the guard's value
/// differs.
pub type VarId = u16;

/// Footprint sentinel: a step carrying this id conflicts with every
/// other step and is never considered independent. Steps registered via
/// [`MockThread::step`] (no footprint) use it implicitly.
pub const CONFLICTS_ALL: VarId = VarId::MAX;

/// A step's enabledness predicate over the shared state.
type Guard<S> = Box<dyn Fn(&S) -> bool>;

/// One atomic step of a modelled thread.
///
/// `run` mutates the shared state; the optional `guard` makes the step
/// blocking (a disabled step cannot be scheduled — this is how mutex
/// acquisition and `join` are modelled). `reads`/`writes` declare the
/// footprint used for independence pruning.
pub struct Step<S> {
    name: &'static str,
    guard: Option<Guard<S>>,
    run: Box<dyn Fn(&mut S)>,
    reads: Vec<VarId>,
    writes: Vec<VarId>,
}

impl<S> Step<S> {
    /// The step's display name, as it appears in reported schedules.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }
}

/// A modelled thread: a named, finite sequence of steps executed in
/// program order. Build one with the fluent `step`/`step_rw`/`guarded`
/// methods, then hand a slice of threads to [`explore`].
pub struct MockThread<S> {
    name: &'static str,
    steps: Vec<Step<S>>,
}

impl<S> MockThread<S> {
    /// A new thread with no steps yet.
    #[must_use]
    pub fn new(name: &'static str) -> Self {
        Self {
            name,
            steps: Vec::new(),
        }
    }

    /// Append an always-enabled step with an unknown footprint: it
    /// conflicts with everything, so no pruning applies around it.
    #[must_use]
    pub fn step(self, name: &'static str, run: impl Fn(&mut S) + 'static) -> Self {
        self.push(name, None, &[CONFLICTS_ALL], &[CONFLICTS_ALL], run)
    }

    /// Append an always-enabled step with a declared read/write footprint.
    #[must_use]
    pub fn step_rw(
        self,
        name: &'static str,
        reads: &[VarId],
        writes: &[VarId],
        run: impl Fn(&mut S) + 'static,
    ) -> Self {
        self.push(name, None, reads, writes, run)
    }

    /// Append a *blocking* step: it can only be scheduled in states where
    /// `guard` returns true. Model mutex acquisition as a step guarded on
    /// the mutex being free, and `join` as a step guarded on the target
    /// thread's "done" flag. Variables the guard reads MUST appear in
    /// `reads`.
    #[must_use]
    pub fn guarded(
        self,
        name: &'static str,
        reads: &[VarId],
        writes: &[VarId],
        guard: impl Fn(&S) -> bool + 'static,
        run: impl Fn(&mut S) + 'static,
    ) -> Self {
        let mut this = self.push(name, None, reads, writes, run);
        if let Some(last) = this.steps.last_mut() {
            last.guard = Some(Box::new(guard));
        }
        this
    }

    /// The thread's display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of steps in the thread's program.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the thread has no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    fn push(
        mut self,
        name: &'static str,
        guard: Option<Guard<S>>,
        reads: &[VarId],
        writes: &[VarId],
        run: impl Fn(&mut S) + 'static,
    ) -> Self {
        self.steps.push(Step {
            name,
            guard,
            run: Box::new(run),
            reads: reads.to_vec(),
            writes: writes.to_vec(),
        });
        self
    }
}

/// Exploration bounds and the seed that permutes DFS visit order.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Hard cap on schedule length; exceeding it marks the search
    /// [`Outcome::Exhausted`] instead of silently truncating.
    pub max_steps: usize,
    /// Hard cap on completed interleavings explored.
    pub max_interleavings: u64,
    /// Seed for the per-depth rotation of scheduling choices. Changing
    /// it reorders the search but cannot change the verdict of an
    /// exhaustive run.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            max_steps: 64,
            max_interleavings: 1_000_000,
            seed: 0x5EED_CA11,
        }
    }
}

/// The verdict of an exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Every interleaving ran to completion and satisfied the invariant.
    Pass {
        /// Completed schedules actually executed (after pruning).
        interleavings: u64,
    },
    /// Some reachable state violated the invariant; `schedule` is the
    /// exact step sequence (as `thread:step` labels) that reaches it.
    InvariantViolation {
        /// The step labels, in execution order, that reach the bad state.
        schedule: Vec<String>,
        /// The invariant's error message.
        message: String,
    },
    /// A reachable state has unfinished threads but no enabled step:
    /// every remaining thread is blocked on a guard. `blocked` names the
    /// stuck threads.
    Deadlock {
        /// The step labels, in execution order, that reach the stuck state.
        schedule: Vec<String>,
        /// Names of the threads blocked on their next guard.
        blocked: Vec<String>,
    },
    /// A bound in [`Config`] was hit before the search completed; the
    /// absence of a violation proves nothing.
    Exhausted {
        /// Completed schedules executed before the budget ran out.
        interleavings: u64,
    },
}

impl Outcome {
    /// True only for a completed, violation-free exploration.
    #[must_use]
    pub fn passed(&self) -> bool {
        matches!(self, Outcome::Pass { .. })
    }
}

/// Exhaustively explore all interleavings of `threads` from `initial`,
/// checking `invariant` on the initial state and after every step.
///
/// `invariant_reads` is the invariant's own read footprint: every
/// shared variable the invariant inspects MUST appear in it (or pass
/// `&[CONFLICTS_ALL]` to disable pruning between writing steps
/// entirely). Steps writing any of those variables are *visible* and
/// are never commuted with each other, so an invariant that can
/// distinguish the intermediate states of two reordered steps sees both
/// orders. Omitting a variable the invariant reads can silently skip a
/// violating intermediate state.
///
/// Returns the first violation or deadlock found (with its reproducing
/// schedule), [`Outcome::Exhausted`] if a budget was hit first, and
/// [`Outcome::Pass`] otherwise.
pub fn explore<S, I>(
    initial: &S,
    threads: &[MockThread<S>],
    invariant: I,
    invariant_reads: &[VarId],
    config: Config,
) -> Outcome
where
    S: Clone,
    I: Fn(&S) -> Result<(), String>,
{
    if let Err(message) = invariant(initial) {
        return Outcome::InvariantViolation {
            schedule: Vec::new(),
            message,
        };
    }
    let mut search = Search {
        threads,
        invariant: &invariant,
        invariant_reads,
        config,
        interleavings: 0,
        budget_hit: false,
    };
    let pcs = vec![0usize; threads.len()];
    let mut schedule = Vec::new();
    match search.dfs(initial.clone(), &pcs, &mut schedule, &BTreeSet::new(), 0) {
        Some(bad) => bad,
        None if search.budget_hit => Outcome::Exhausted {
            interleavings: search.interleavings,
        },
        None => Outcome::Pass {
            interleavings: search.interleavings,
        },
    }
}

struct Search<'a, S, I> {
    threads: &'a [MockThread<S>],
    invariant: &'a I,
    invariant_reads: &'a [VarId],
    config: Config,
    interleavings: u64,
    budget_hit: bool,
}

impl<S, I> Search<'_, S, I>
where
    S: Clone,
    I: Fn(&S) -> Result<(), String>,
{
    fn dfs(
        &mut self,
        state: S,
        pcs: &[usize],
        schedule: &mut Vec<String>,
        sleep: &BTreeSet<usize>,
        depth: u64,
    ) -> Option<Outcome> {
        // The interleaving budget is checked lazily, on the next node
        // *after* the cap-th completion: a search that finishes exactly
        // at the cap never reaches another node, so it still counts as
        // exhaustive and reports Pass.
        if self.interleavings >= self.config.max_interleavings {
            self.budget_hit = true;
            return None;
        }
        let remaining: Vec<usize> = (0..self.threads.len())
            .filter(|&t| pcs[t] < self.threads[t].steps.len())
            .collect();
        if remaining.is_empty() {
            self.interleavings += 1;
            return None;
        }
        if schedule.len() >= self.config.max_steps {
            self.budget_hit = true;
            return None;
        }
        let enabled: Vec<usize> = remaining
            .iter()
            .copied()
            .filter(|&t| {
                let step = &self.threads[t].steps[pcs[t]];
                step.guard.as_ref().is_none_or(|g| g(&state))
            })
            .collect();
        if enabled.is_empty() {
            // Unfinished threads, none runnable: a real deadlock, reported
            // before sleep-set filtering so pruning can never mask it.
            return Some(Outcome::Deadlock {
                schedule: schedule.clone(),
                blocked: remaining
                    .iter()
                    .map(|&t| self.threads[t].name.to_string())
                    .collect(),
            });
        }
        let mut runnable: Vec<usize> = enabled
            .iter()
            .copied()
            .filter(|t| !sleep.contains(t))
            .collect();
        if runnable.is_empty() {
            // Everything enabled is asleep: this subtree is equivalent to
            // one already explored under a different order.
            return None;
        }
        let rot = (splitmix64(self.config.seed ^ depth) % runnable.len() as u64) as usize;
        runnable.rotate_left(rot);

        let mut slept = sleep.clone();
        for &t in &runnable {
            if self.budget_hit {
                return None;
            }
            let step = &self.threads[t].steps[pcs[t]];
            let mut next = state.clone();
            (step.run)(&mut next);
            schedule.push(format!("{}:{}", self.threads[t].name, step.name));
            if let Err(message) = (self.invariant)(&next) {
                return Some(Outcome::InvariantViolation {
                    schedule: schedule.clone(),
                    message,
                });
            }
            let mut next_pcs = pcs.to_vec();
            next_pcs[t] += 1;
            // A sibling stays asleep in the child only if its pending step
            // is independent of the one we just took.
            let child_sleep: BTreeSet<usize> = slept
                .iter()
                .copied()
                .filter(|&u| {
                    independent(&self.threads[u].steps[pcs[u]], step, self.invariant_reads)
                })
                .collect();
            if let Some(bad) = self.dfs(next, &next_pcs, schedule, &child_sleep, depth + 1) {
                return Some(bad);
            }
            schedule.pop();
            slept.insert(t);
        }
        None
    }
}

fn conflicts(a: &[VarId], b: &[VarId]) -> bool {
    a.iter().any(|x| b.contains(x))
}

/// A step is *visible* when it writes a variable the invariant reads:
/// reordering two visible steps produces intermediate states the
/// invariant can tell apart, so such a pair must never be pruned even
/// when their footprints are disjoint.
fn visible(writes: &[VarId], invariant_reads: &[VarId]) -> bool {
    if invariant_reads.contains(&CONFLICTS_ALL) {
        return !writes.is_empty();
    }
    conflicts(writes, invariant_reads)
}

fn independent<S>(a: &Step<S>, b: &Step<S>, invariant_reads: &[VarId]) -> bool {
    let opaque =
        |s: &Step<S>| s.reads.contains(&CONFLICTS_ALL) || s.writes.contains(&CONFLICTS_ALL);
    if opaque(a) || opaque(b) {
        return false;
    }
    if visible(&a.writes, invariant_reads) && visible(&b.writes, invariant_reads) {
        return false;
    }
    !conflicts(&a.writes, &b.writes)
        && !conflicts(&a.writes, &b.reads)
        && !conflicts(&b.writes, &a.reads)
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    const VX: VarId = 0;
    const VY: VarId = 1;

    #[derive(Clone, Default)]
    struct Pair {
        x: u64,
        y: u64,
    }

    const VW: VarId = 2;

    #[test]
    fn lost_update_is_found() {
        // Two threads doing read-then-write on the same cell: the classic
        // lost update must be reachable, so a "sum is 2 at the end" claim
        // phrased as "x never observed stuck at 1 after both writes" fails.
        #[derive(Clone, Default)]
        struct M {
            x: u64,
            tmp: [u64; 2],
            wrote: [bool; 2],
        }
        let mk = |tid: usize| {
            MockThread::new(if tid == 0 { "a" } else { "b" })
                .step_rw("read", &[VX], &[], move |s: &mut M| s.tmp[tid] = s.x)
                .step_rw("write", &[], &[VX, VW], move |s: &mut M| {
                    s.x = s.tmp[tid] + 1;
                    s.wrote[tid] = true;
                })
        };
        let out = explore(
            &M::default(),
            &[mk(0), mk(1)],
            |s| {
                if s.wrote[0] && s.wrote[1] && s.x != 2 {
                    return Err(format!("lost update: x = {}", s.x));
                }
                Ok(())
            },
            &[VX, VW],
            Config::default(),
        );
        match out {
            Outcome::InvariantViolation { schedule, .. } => {
                assert_eq!(schedule.len(), 4, "violation needs all four steps");
            }
            other => unreachable!("expected violation, got {other:?}"),
        }
    }

    #[test]
    fn independent_steps_are_pruned_but_explored() {
        // Two threads touching disjoint variables, and an invariant that
        // only reads one of them: one interleaving order suffices; sleep
        // sets must prune the mirror schedule (the `wy` writer is
        // invisible to the invariant, so the pair stays independent).
        let a = MockThread::new("a").step_rw("wx", &[], &[VX], |s: &mut Pair| s.x += 1);
        let b = MockThread::new("b").step_rw("wy", &[], &[VY], |s: &mut Pair| s.y += 1);
        let out = explore(
            &Pair::default(),
            &[a, b],
            |s| {
                if s.x > 1 {
                    return Err("double increment".to_string());
                }
                Ok(())
            },
            &[VX],
            Config::default(),
        );
        match out {
            Outcome::Pass { interleavings } => assert_eq!(interleavings, 1),
            other => unreachable!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn visible_writers_are_never_commuted() {
        // Footprint-disjoint writers of x and y, but the invariant reads
        // BOTH: the intermediate state {y=1, x=0} exists only in the
        // order `b; a`, so pruning that order would mask the violation.
        // Declaring the invariant's reads makes both steps visible and
        // forces both orders to be explored.
        let a = MockThread::new("a").step_rw("wx", &[], &[VX], |s: &mut Pair| s.x = 1);
        let b = MockThread::new("b").step_rw("wy", &[], &[VY], |s: &mut Pair| s.y = 1);
        let out = explore(
            &Pair::default(),
            &[a, b],
            |s| {
                if s.y == 1 && s.x == 0 {
                    return Err("y set before x".to_string());
                }
                Ok(())
            },
            &[VX, VY],
            Config::default(),
        );
        assert!(
            matches!(out, Outcome::InvariantViolation { .. }),
            "the order-sensitive intermediate state must be observed: {out:?}"
        );
    }

    #[test]
    fn conflicting_steps_explore_both_orders() {
        let a = MockThread::new("a").step_rw("wx", &[], &[VX], |s: &mut Pair| s.x += 1);
        let b = MockThread::new("b").step_rw("rx", &[VX], &[VY], |s: &mut Pair| s.y = s.x);
        let out = explore(
            &Pair::default(),
            &[a, b],
            |_| Ok(()),
            &[],
            Config::default(),
        );
        match out {
            Outcome::Pass { interleavings } => assert_eq!(interleavings, 2),
            other => unreachable!("expected pass, got {other:?}"),
        }
    }

    #[test]
    fn cross_blocked_guards_deadlock() {
        // a waits for y, b waits for x; neither ever runs.
        let a = MockThread::new("a").guarded(
            "wait-y",
            &[VY],
            &[VX],
            |s: &Pair| s.y == 1,
            |s: &mut Pair| s.x = 1,
        );
        let b = MockThread::new("b").guarded(
            "wait-x",
            &[VX],
            &[VY],
            |s: &Pair| s.x == 1,
            |s: &mut Pair| s.y = 1,
        );
        let out = explore(
            &Pair::default(),
            &[a, b],
            |_| Ok(()),
            &[],
            Config::default(),
        );
        match out {
            Outcome::Deadlock { blocked, schedule } => {
                assert_eq!(blocked, vec!["a".to_string(), "b".to_string()]);
                assert!(schedule.is_empty(), "stuck in the initial state");
            }
            other => unreachable!("expected deadlock, got {other:?}"),
        }
    }

    #[test]
    fn seed_changes_order_not_verdict() {
        let mk = || {
            [
                MockThread::new("a").step_rw("wx", &[], &[VX], |s: &mut Pair| s.x += 1),
                MockThread::new("b").step_rw("rx", &[VX], &[VY], |s: &mut Pair| s.y = s.x),
            ]
        };
        let base = explore(&Pair::default(), &mk(), |_| Ok(()), &[], Config::default());
        for seed in [1u64, 7, 0xDEAD_BEEF] {
            let out = explore(
                &Pair::default(),
                &mk(),
                |_| Ok(()),
                &[],
                Config {
                    seed,
                    ..Config::default()
                },
            );
            assert_eq!(out, base);
        }
    }

    #[test]
    fn interleaving_budget_reports_exhausted() {
        let mk = |n: &'static str| {
            MockThread::new(n)
                .step("s1", |s: &mut Pair| s.x += 1)
                .step("s2", |s: &mut Pair| s.y += 1)
        };
        let out = explore(
            &Pair::default(),
            &[mk("a"), mk("b"), mk("c")],
            |_| Ok(()),
            &[],
            Config {
                max_interleavings: 3,
                ..Config::default()
            },
        );
        match out {
            Outcome::Exhausted { interleavings } => assert_eq!(interleavings, 3),
            other => unreachable!("expected exhausted, got {other:?}"),
        }
    }

    #[test]
    fn completing_exactly_at_the_cap_still_passes() {
        // Two conflicting single-step threads have exactly 2 schedules; a
        // cap of 2 is fully spent but nothing was skipped, so the search
        // is exhaustive and must report Pass, not Exhausted.
        let mk = || {
            [
                MockThread::new("a").step_rw("wx", &[], &[VX], |s: &mut Pair| s.x += 1),
                MockThread::new("b").step_rw("rx", &[VX], &[VY], |s: &mut Pair| s.y = s.x),
            ]
        };
        let out = explore(
            &Pair::default(),
            &mk(),
            |_| Ok(()),
            &[],
            Config {
                max_interleavings: 2,
                ..Config::default()
            },
        );
        match out {
            Outcome::Pass { interleavings } => assert_eq!(interleavings, 2),
            other => unreachable!("exact-cap completion is exhaustive, got {other:?}"),
        }
    }
}
