//! Exhaustive interleaving models of the workspace's concurrency planes.
//!
//! Each model re-states one real component at the granularity of its
//! shared-memory operations and lets the scheduler enumerate every
//! schedule. Paired with most "fixed" models is a seeded-violation
//! variant proving the checker still catches the bug class the real
//! code is defending against.

use coopcache_interleave::{explore, Config, MockAtomicU64, MockMutex, MockThread, Outcome, VarId};

// ---------------------------------------------------------------------------
// StatsRegistry: record/snapshot/total (crates/obs/src/stats.rs)
// ---------------------------------------------------------------------------

const V_C0: VarId = 0;
const V_C1: VarId = 1;
const V_READER: VarId = 2;

#[derive(Clone)]
struct StatsModel {
    counts: [MockAtomicU64; 2],
    snap: [u64; 2],
    total: u64,
    total_done: bool,
}

impl StatsModel {
    fn new() -> Self {
        Self {
            counts: [MockAtomicU64::new(V_C0, 0), MockAtomicU64::new(V_C1, 0)],
            snap: [0; 2],
            total: 0,
            total_done: false,
        }
    }
}

fn stats_recorder() -> MockThread<StatsModel> {
    MockThread::new("recorder")
        .step_rw("record-kind0", &[], &[V_C0], |s: &mut StatsModel| {
            s.counts[0].fetch_add(1);
        })
        .step_rw("record-kind1", &[], &[V_C1], |s: &mut StatsModel| {
            s.counts[1].fetch_add(1);
        })
}

/// The pre-fix `total()`: a second independent pass over the live
/// atomics. A record landing between the snapshot pass and the total
/// pass makes `total()` disagree with the snapshot the caller just took.
#[test]
fn stats_total_second_pass_disagrees_with_snapshot() {
    let reader = MockThread::new("scraper")
        .step_rw("snap0", &[V_C0], &[V_READER], |s: &mut StatsModel| {
            s.snap[0] = s.counts[0].load();
        })
        .step_rw("snap1", &[V_C1], &[V_READER], |s: &mut StatsModel| {
            s.snap[1] = s.counts[1].load();
        })
        .step_rw("total-live0", &[V_C0], &[V_READER], |s: &mut StatsModel| {
            s.total = s.counts[0].load();
        })
        .step_rw("total-live1", &[V_C1], &[V_READER], |s: &mut StatsModel| {
            s.total += s.counts[1].load();
            s.total_done = true;
        });
    let out = explore(
        &StatsModel::new(),
        &[stats_recorder(), reader],
        |s| {
            if s.total_done && s.total != s.snap[0] + s.snap[1] {
                return Err(format!(
                    "total() {} != sum of caller's snapshot {}",
                    s.total,
                    s.snap[0] + s.snap[1]
                ));
            }
            Ok(())
        },
        &[V_READER],
        Config::default(),
    );
    assert!(
        matches!(out, Outcome::InvariantViolation { .. }),
        "the two-pass total must be caught: {out:?}"
    );
}

/// The fixed `total()`: derived from the same single snapshot pass, so
/// it can never disagree with that snapshot, in any interleaving.
#[test]
fn stats_total_from_one_snapshot_pass_is_consistent() {
    let reader = MockThread::new("scraper")
        .step_rw("snap0", &[V_C0], &[V_READER], |s: &mut StatsModel| {
            s.snap[0] = s.counts[0].load();
        })
        .step_rw("snap1", &[V_C1], &[V_READER], |s: &mut StatsModel| {
            s.snap[1] = s.counts[1].load();
        })
        .step_rw(
            "total-derive",
            &[V_READER],
            &[V_READER],
            |s: &mut StatsModel| {
                s.total = s.snap[0] + s.snap[1];
                s.total_done = true;
            },
        );
    let out = explore(
        &StatsModel::new(),
        &[stats_recorder(), reader],
        |s| {
            if s.total_done && s.total != s.snap[0] + s.snap[1] {
                return Err("derived total diverged from its snapshot".to_string());
            }
            Ok(())
        },
        &[V_READER],
        Config::default(),
    );
    assert!(out.passed(), "one-pass total must hold everywhere: {out:?}");
}

/// Successive snapshots are pointwise monotone: counters only grow, so
/// a later pass can never observe a smaller per-kind value.
#[test]
fn stats_snapshots_are_pointwise_monotone() {
    #[derive(Clone)]
    struct Mono {
        counts: [MockAtomicU64; 2],
        first: [u64; 2],
        second: [u64; 2],
        first_done: bool,
        second_done: bool,
    }
    let initial = Mono {
        counts: [MockAtomicU64::new(V_C0, 0), MockAtomicU64::new(V_C1, 0)],
        first: [0; 2],
        second: [0; 2],
        first_done: false,
        second_done: false,
    };
    let recorder = MockThread::new("recorder")
        .step_rw("record-kind0", &[], &[V_C0], |s: &mut Mono| {
            s.counts[0].fetch_add(1);
        })
        .step_rw("record-kind1", &[], &[V_C1], |s: &mut Mono| {
            s.counts[1].fetch_add(1);
        });
    let reader = MockThread::new("scraper")
        .step_rw("first0", &[V_C0], &[V_READER], |s: &mut Mono| {
            s.first[0] = s.counts[0].load();
        })
        .step_rw("first1", &[V_C1], &[V_READER], |s: &mut Mono| {
            s.first[1] = s.counts[1].load();
            s.first_done = true;
        })
        .step_rw("second0", &[V_C0], &[V_READER], |s: &mut Mono| {
            s.second[0] = s.counts[0].load();
        })
        .step_rw("second1", &[V_C1], &[V_READER], |s: &mut Mono| {
            s.second[1] = s.counts[1].load();
            s.second_done = true;
        });
    let out = explore(
        &initial,
        &[recorder, reader],
        |s| {
            if s.first_done && s.second_done {
                for k in 0..2 {
                    if s.second[k] < s.first[k] {
                        return Err(format!("kind {k} went backwards"));
                    }
                }
            }
            Ok(())
        },
        &[V_READER],
        Config::default(),
    );
    assert!(out.passed(), "snapshot monotonicity must hold: {out:?}");
}

// ---------------------------------------------------------------------------
// SeriesRing: sampler vs scraper handoff (crates/obs/src/series.rs,
// crates/net/src/daemon.rs sample_loop / OP_SERIES)
// ---------------------------------------------------------------------------

const V_RING_MUTEX: VarId = 10;
const V_RING_T: VarId = 11;
const V_RING_CTR: VarId = 12;
const V_RING_SEEN: VarId = 13;

/// A sample point is written field-by-field (`t_ms`, then the counter
/// derived from it). The model invariant is the point's internal
/// consistency: an observed counter must match its observed `t_ms`.
#[derive(Clone)]
struct PointModel {
    ring: MockMutex,
    t_ms: u64,
    counter: u64,
    seen: Option<(u64, u64)>,
}

impl PointModel {
    fn new() -> Self {
        Self {
            ring: MockMutex::new(V_RING_MUTEX),
            t_ms: 0,
            counter: 0,
            seen: None,
        }
    }

    fn check(&self) -> Result<(), String> {
        if self.ring.poisoned() {
            return Err("ring mutex protocol violated".to_string());
        }
        if let Some((t, c)) = self.seen {
            if c != 2 * t {
                return Err(format!("torn point observed: t_ms={t} counter={c}"));
            }
        }
        Ok(())
    }
}

/// The real arrangement: both sides serialize on the ring mutex, so the
/// two-field write is atomic with respect to the scraper.
#[test]
fn series_ring_locked_handoff_never_tears() {
    let sampler = MockThread::new("sampler")
        .guarded(
            "lock",
            &[V_RING_MUTEX],
            &[V_RING_MUTEX],
            |s: &PointModel| s.ring.is_free(),
            |s: &mut PointModel| s.ring.acquire(0),
        )
        .step_rw("write-t", &[], &[V_RING_T], |s: &mut PointModel| {
            s.t_ms = 10
        })
        .step_rw(
            "write-counter",
            &[V_RING_T],
            &[V_RING_CTR],
            |s: &mut PointModel| {
                s.counter = 2 * s.t_ms;
            },
        )
        .step_rw("unlock", &[], &[V_RING_MUTEX], |s: &mut PointModel| {
            s.ring.release(0)
        });
    let scraper = MockThread::new("scraper")
        .guarded(
            "lock",
            &[V_RING_MUTEX],
            &[V_RING_MUTEX],
            |s: &PointModel| s.ring.is_free(),
            |s: &mut PointModel| s.ring.acquire(1),
        )
        .step_rw(
            "read-point",
            &[V_RING_T, V_RING_CTR],
            &[V_RING_SEEN],
            |s: &mut PointModel| s.seen = Some((s.t_ms, s.counter)),
        )
        .step_rw("unlock", &[], &[V_RING_MUTEX], |s: &mut PointModel| {
            s.ring.release(1)
        });
    let out = explore(
        &PointModel::new(),
        &[sampler, scraper],
        PointModel::check,
        &[V_RING_MUTEX, V_RING_SEEN],
        Config::default(),
    );
    assert!(out.passed(), "locked handoff must never tear: {out:?}");
}

/// Seeded violation: drop the mutex and the scraper can land between the
/// two field writes, observing a torn point — the checker must find it.
#[test]
fn series_ring_unlocked_handoff_is_caught() {
    let sampler = MockThread::new("sampler")
        .step_rw("write-t", &[], &[V_RING_T], |s: &mut PointModel| {
            s.t_ms = 10
        })
        .step_rw(
            "write-counter",
            &[V_RING_T],
            &[V_RING_CTR],
            |s: &mut PointModel| {
                s.counter = 2 * s.t_ms;
            },
        );
    let scraper = MockThread::new("scraper").step_rw(
        "read-point",
        &[V_RING_T, V_RING_CTR],
        &[V_RING_SEEN],
        |s: &mut PointModel| s.seen = Some((s.t_ms, s.counter)),
    );
    let out = explore(
        &PointModel::new(),
        &[sampler, scraper],
        PointModel::check,
        &[V_RING_MUTEX, V_RING_SEEN],
        Config::default(),
    );
    match out {
        Outcome::InvariantViolation { schedule, .. } => {
            assert_eq!(
                schedule.last().map(String::as_str),
                Some("scraper:read-point"),
                "the tear is observed by the scraper: {schedule:?}"
            );
        }
        other => unreachable!("unlocked handoff must be caught, got {other:?}"),
    }
}

/// Bounded-ring eviction under the lock: capacity and ordering hold in
/// every interleaving of a pushing sampler and a copying scraper.
#[test]
fn series_ring_eviction_keeps_bound_and_order() {
    const CAP: usize = 2;
    #[derive(Clone)]
    struct RingModel {
        m: MockMutex,
        ring: Vec<u64>,
        seen: Option<Vec<u64>>,
    }
    fn well_formed(points: &[u64]) -> Result<(), String> {
        if points.len() > CAP {
            return Err(format!("ring over capacity: {points:?}"));
        }
        if points.windows(2).any(|w| w[0] >= w[1]) {
            return Err(format!("ring out of order: {points:?}"));
        }
        Ok(())
    }
    let initial = RingModel {
        m: MockMutex::new(V_RING_MUTEX),
        ring: Vec::new(),
        seen: None,
    };
    let mut sampler = MockThread::new("sampler");
    for t in [10u64, 20, 30] {
        sampler = sampler
            .guarded(
                "lock",
                &[V_RING_MUTEX],
                &[V_RING_MUTEX],
                |s: &RingModel| s.m.is_free(),
                |s: &mut RingModel| s.m.acquire(0),
            )
            .step_rw("evict", &[V_RING_T], &[V_RING_T], |s: &mut RingModel| {
                if s.ring.len() == CAP {
                    s.ring.remove(0);
                }
            })
            .step_rw(
                "push",
                &[V_RING_T],
                &[V_RING_T],
                move |s: &mut RingModel| {
                    s.ring.push(t);
                },
            )
            .step_rw("unlock", &[], &[V_RING_MUTEX], |s: &mut RingModel| {
                s.m.release(0)
            });
    }
    let scraper = MockThread::new("scraper")
        .guarded(
            "lock",
            &[V_RING_MUTEX],
            &[V_RING_MUTEX],
            |s: &RingModel| s.m.is_free(),
            |s: &mut RingModel| s.m.acquire(1),
        )
        .step_rw("copy", &[V_RING_T], &[V_RING_SEEN], |s: &mut RingModel| {
            s.seen = Some(s.ring.clone());
        })
        .step_rw("unlock", &[], &[V_RING_MUTEX], |s: &mut RingModel| {
            s.m.release(1)
        });
    let out = explore(
        &initial,
        &[sampler, scraper],
        |s| {
            if s.m.poisoned() {
                return Err("ring mutex protocol violated".to_string());
            }
            well_formed(&s.ring)?;
            if let Some(seen) = &s.seen {
                well_formed(seen)?;
            }
            Ok(())
        },
        &[V_RING_MUTEX, V_RING_T, V_RING_SEEN],
        Config::default(),
    );
    assert!(out.passed(), "eviction bound/order must hold: {out:?}");
}

// ---------------------------------------------------------------------------
// PeerHealth quarantine backoff (crates/net/src/daemon.rs)
// ---------------------------------------------------------------------------

const V_Q_MUTEX: VarId = 20;
const V_Q_STATE: VarId = 21;

const Q_BASE_US: u64 = 250_000;
const Q_CAP_US: u64 = 1_000_000;
const Q_AFTER: u32 = 1;

#[derive(Clone)]
struct QuarModel {
    m: MockMutex,
    failures: u32,
    quarantines: u32,
    until_us: u64,
    last_backoff_us: u64,
    done: bool,
}

impl QuarModel {
    fn new() -> Self {
        Self {
            m: MockMutex::new(V_Q_MUTEX),
            failures: 0,
            quarantines: 0,
            until_us: 0,
            last_backoff_us: 0,
            done: false,
        }
    }

    /// Mirrors `CacheDaemon::note_peer_failure` under the health lock.
    fn record_failure(&mut self) {
        self.failures = self.failures.saturating_add(1);
        if self.failures >= Q_AFTER {
            let backoff = (Q_BASE_US << self.quarantines.min(16)).min(Q_CAP_US);
            self.until_us = backoff; // clock pinned at 0 in the model
            self.last_backoff_us = backoff;
            self.quarantines = self.quarantines.saturating_add(1);
        }
    }

    /// Mirrors `CacheDaemon::note_peer_ok` (full rehabilitation).
    fn record_ok(&mut self) {
        self.failures = 0;
        self.quarantines = 0;
        self.until_us = 0;
    }

    fn check(&self) -> Result<(), String> {
        if self.m.poisoned() {
            return Err("health mutex protocol violated".to_string());
        }
        if self.last_backoff_us > Q_CAP_US {
            return Err(format!("backoff over cap: {}", self.last_backoff_us));
        }
        if self.quarantines > 0 {
            let expect = (Q_BASE_US << (self.quarantines - 1).min(16)).min(Q_CAP_US);
            if self.last_backoff_us != expect {
                return Err(format!(
                    "backoff {} != expected {} at quarantine #{}",
                    self.last_backoff_us, expect, self.quarantines
                ));
            }
        }
        if self.until_us > 0 && self.until_us != self.last_backoff_us {
            return Err("until_us diverged from the backoff that set it".to_string());
        }
        Ok(())
    }
}

fn quar_cycle(
    thread: MockThread<QuarModel>,
    tid: usize,
    name: &'static str,
    body: impl Fn(&mut QuarModel) + 'static,
) -> MockThread<QuarModel> {
    thread
        .guarded(
            "lock",
            &[V_Q_MUTEX],
            &[V_Q_MUTEX],
            |s: &QuarModel| s.m.is_free(),
            move |s: &mut QuarModel| s.m.acquire(tid),
        )
        .step_rw(name, &[V_Q_STATE], &[V_Q_STATE], body)
        .step_rw("unlock", &[], &[V_Q_MUTEX], move |s: &mut QuarModel| {
            s.m.release(tid)
        })
}

/// Two failure reporters, one rehabilitator and one prober race on the
/// health map: the backoff formula and the mutex protocol hold in every
/// schedule.
#[test]
fn quarantine_transitions_hold_under_races() {
    let mut failer = MockThread::new("failer");
    for _ in 0..2 {
        failer = quar_cycle(failer, 0, "record-failure", QuarModel::record_failure);
    }
    let rehab = quar_cycle(
        MockThread::new("rehab"),
        1,
        "record-ok",
        QuarModel::record_ok,
    );
    let prober = quar_cycle(MockThread::new("prober"), 2, "probe", |s| {
        // `is_quarantined` is a pure read under the lock.
        let _ = s.until_us > 0;
    });
    let out = explore(
        &QuarModel::new(),
        &[failer, rehab, prober],
        QuarModel::check,
        &[V_Q_MUTEX, V_Q_STATE],
        Config::default(),
    );
    assert!(out.passed(), "quarantine invariants must hold: {out:?}");
}

/// Repeated failures double the backoff until the cap and never past it.
#[test]
fn quarantine_backoff_doubles_to_cap() {
    let mut failer = MockThread::new("failer");
    for _ in 0..4 {
        failer = quar_cycle(failer, 0, "record-failure", QuarModel::record_failure);
    }
    failer = failer.step_rw("done", &[], &[V_Q_STATE], |s: &mut QuarModel| s.done = true);
    let out = explore(
        &QuarModel::new(),
        &[failer],
        |s| {
            s.check()?;
            if s.done && s.last_backoff_us != Q_CAP_US {
                return Err(format!(
                    "4 quarantines should reach the cap, got {}",
                    s.last_backoff_us
                ));
            }
            Ok(())
        },
        &[V_Q_MUTEX, V_Q_STATE],
        Config::default(),
    );
    assert!(out.passed(), "backoff ladder must reach the cap: {out:?}");
}

/// Seeded violation: skip the `is_free` guard on one path and the mutex
/// poisons — the model cannot silently tolerate a protocol break.
#[test]
fn quarantine_unguarded_acquire_is_caught() {
    let failer = MockThread::new("failer")
        .step_rw(
            "lock-unguarded",
            &[V_Q_MUTEX],
            &[V_Q_MUTEX],
            |s: &mut QuarModel| {
                s.m.acquire(0);
            },
        )
        .step_rw(
            "record-failure",
            &[V_Q_STATE],
            &[V_Q_STATE],
            QuarModel::record_failure,
        )
        .step_rw("unlock", &[], &[V_Q_MUTEX], |s: &mut QuarModel| {
            s.m.release(0)
        });
    let prober = quar_cycle(MockThread::new("prober"), 1, "probe", |_| {});
    let out = explore(
        &QuarModel::new(),
        &[failer, prober],
        QuarModel::check,
        &[V_Q_MUTEX, V_Q_STATE],
        Config::default(),
    );
    assert!(
        matches!(out, Outcome::InvariantViolation { .. }),
        "unguarded acquire must poison and be caught: {out:?}"
    );
}

// ---------------------------------------------------------------------------
// PR 5 regression: holding a shared sink's lock across a shutdown that
// joins emitting threads (crates/obs/src/sink.rs SinkHandle::from_arc)
// ---------------------------------------------------------------------------

const V_SINK_MUTEX: VarId = 30;
const V_WORKER_DONE: VarId = 31;
const V_EMITTED: VarId = 32;
const V_SUMMARY: VarId = 33;

#[derive(Clone)]
struct ShutdownModel {
    sink: MockMutex,
    worker_done: bool,
    emitted: u64,
    summary: Option<u64>,
}

impl ShutdownModel {
    fn new() -> Self {
        Self {
            sink: MockMutex::new(V_SINK_MUTEX),
            worker_done: false,
            emitted: 0,
            summary: None,
        }
    }

    fn check(&self) -> Result<(), String> {
        if self.sink.poisoned() {
            return Err("sink mutex protocol violated".to_string());
        }
        Ok(())
    }
}

/// The worker loop: emit one event under the sink lock, then exit
/// (its final step is the `join` handshake flag).
fn emitting_worker() -> MockThread<ShutdownModel> {
    MockThread::new("worker")
        .guarded(
            "lock-sink",
            &[V_SINK_MUTEX],
            &[V_SINK_MUTEX],
            |s: &ShutdownModel| s.sink.is_free(),
            |s: &mut ShutdownModel| s.sink.acquire(0),
        )
        .step_rw(
            "emit",
            &[V_EMITTED],
            &[V_EMITTED],
            |s: &mut ShutdownModel| {
                s.emitted += 1;
            },
        )
        .step_rw(
            "unlock-sink",
            &[],
            &[V_SINK_MUTEX],
            |s: &mut ShutdownModel| {
                s.sink.release(0);
            },
        )
        .step_rw("exit", &[], &[V_WORKER_DONE], |s: &mut ShutdownModel| {
            s.worker_done = true;
        })
}

/// The PR 5 bug, as a model: the harness takes the sink lock to read a
/// summary and — still holding it — joins the worker. If the worker has
/// not yet emitted, it blocks on the sink lock forever while the harness
/// blocks on the join: a deadlock the scheduler must find.
#[test]
fn pr5_sink_lock_across_join_deadlocks() {
    let harness = MockThread::new("harness")
        .guarded(
            "lock-sink",
            &[V_SINK_MUTEX],
            &[V_SINK_MUTEX],
            |s: &ShutdownModel| s.sink.is_free(),
            |s: &mut ShutdownModel| s.sink.acquire(1),
        )
        .step_rw(
            "read-summary",
            &[V_EMITTED],
            &[V_SUMMARY],
            |s: &mut ShutdownModel| {
                s.summary = Some(s.emitted);
            },
        )
        .guarded(
            "join-worker",
            &[V_WORKER_DONE],
            &[],
            |s: &ShutdownModel| s.worker_done,
            |_| {},
        )
        .step_rw(
            "unlock-sink",
            &[],
            &[V_SINK_MUTEX],
            |s: &mut ShutdownModel| {
                s.sink.release(1);
            },
        );
    let out = explore(
        &ShutdownModel::new(),
        &[emitting_worker(), harness],
        ShutdownModel::check,
        &[V_SINK_MUTEX],
        Config::default(),
    );
    match out {
        Outcome::Deadlock { blocked, schedule } => {
            assert!(
                blocked.contains(&"worker".to_string()) && blocked.contains(&"harness".to_string()),
                "both sides wedge: {blocked:?}"
            );
            assert!(
                schedule.iter().any(|s| s == "harness:lock-sink"),
                "the deadlock requires the harness holding the sink: {schedule:?}"
            );
        }
        other => unreachable!("the PR 5 class must deadlock in some schedule, got {other:?}"),
    }
}

/// The fix: read the summary, release the sink lock, *then* join. No
/// interleaving deadlocks or breaks the mutex protocol.
#[test]
fn pr5_release_before_join_is_clean() {
    let harness = MockThread::new("harness")
        .guarded(
            "lock-sink",
            &[V_SINK_MUTEX],
            &[V_SINK_MUTEX],
            |s: &ShutdownModel| s.sink.is_free(),
            |s: &mut ShutdownModel| s.sink.acquire(1),
        )
        .step_rw(
            "read-summary",
            &[V_EMITTED],
            &[V_SUMMARY],
            |s: &mut ShutdownModel| {
                s.summary = Some(s.emitted);
            },
        )
        .step_rw(
            "unlock-sink",
            &[],
            &[V_SINK_MUTEX],
            |s: &mut ShutdownModel| {
                s.sink.release(1);
            },
        )
        .guarded(
            "join-worker",
            &[V_WORKER_DONE],
            &[],
            |s: &ShutdownModel| s.worker_done,
            |_| {},
        );
    let out = explore(
        &ShutdownModel::new(),
        &[emitting_worker(), harness],
        |s| {
            s.check()?;
            if let Some(summary) = s.summary {
                if summary > 1 {
                    return Err(format!("impossible summary {summary}"));
                }
            }
            Ok(())
        },
        &[V_SINK_MUTEX, V_EMITTED, V_SUMMARY],
        Config::default(),
    );
    assert!(
        out.passed(),
        "release-before-join must be deadlock-free: {out:?}"
    );
}

// ---------------------------------------------------------------------------
// PR 8: sharded arena store — per-shard locking in ConcurrentCache
// (crates/core/src/concurrent.rs lock_shard / snapshot)
// ---------------------------------------------------------------------------

const V_SHARD0_MUTEX: VarId = 40;
const V_SHARD1_MUTEX: VarId = 41;
const V_SHARD0_DATA: VarId = 42;
const V_SHARD1_DATA: VarId = 43;
const V_SNAP: VarId = 44;

/// Two shards of a `ConcurrentCache`: each shard is a lock plus its
/// insert count; the snapshot pass copies shard 0 then shard 1, taking
/// one lock at a time in index order (exactly `ConcurrentCache::snapshot`).
#[derive(Clone)]
struct ShardModel {
    locks: [MockMutex; 2],
    applied: [u64; 2],
    snap: [Option<u64>; 2],
}

impl ShardModel {
    fn new() -> Self {
        Self {
            locks: [
                MockMutex::new(V_SHARD0_MUTEX),
                MockMutex::new(V_SHARD1_MUTEX),
            ],
            applied: [0; 2],
            snap: [None; 2],
        }
    }

    fn check(&self) -> Result<(), String> {
        for (i, lock) in self.locks.iter().enumerate() {
            if lock.poisoned() {
                return Err(format!("shard {i} mutex protocol violated"));
            }
        }
        Ok(())
    }
}

/// A requester pinned to one shard: lock it, apply an insert, unlock.
/// Never touches the other shard's lock — the property the doc-hash
/// shard assignment guarantees for every request path.
fn shard_requester(tid: usize, shard: usize, cycles: usize) -> MockThread<ShardModel> {
    let mutex_var = if shard == 0 {
        V_SHARD0_MUTEX
    } else {
        V_SHARD1_MUTEX
    };
    let data_var = if shard == 0 {
        V_SHARD0_DATA
    } else {
        V_SHARD1_DATA
    };
    let name: &'static str = if shard == 0 { "req-s0" } else { "req-s1" };
    let mut t = MockThread::new(name);
    for _ in 0..cycles {
        t = t
            .guarded(
                "lock",
                &[mutex_var],
                &[mutex_var],
                move |s: &ShardModel| s.locks[shard].is_free(),
                move |s: &mut ShardModel| s.locks[shard].acquire(tid),
            )
            .step_rw(
                "insert",
                &[data_var],
                &[data_var],
                move |s: &mut ShardModel| {
                    s.applied[shard] += 1;
                },
            )
            .step_rw("unlock", &[], &[mutex_var], move |s: &mut ShardModel| {
                s.locks[shard].release(tid);
            });
    }
    t
}

/// The snapshot/iter pass: shard 0 under its lock, release, then shard 1
/// under its lock — never two locks at once.
fn shard_snapshotter(tid: usize) -> MockThread<ShardModel> {
    MockThread::new("snapshot")
        .guarded(
            "lock-s0",
            &[V_SHARD0_MUTEX],
            &[V_SHARD0_MUTEX],
            |s: &ShardModel| s.locks[0].is_free(),
            move |s: &mut ShardModel| s.locks[0].acquire(tid),
        )
        .step_rw(
            "copy-s0",
            &[V_SHARD0_DATA],
            &[V_SNAP],
            |s: &mut ShardModel| {
                s.snap[0] = Some(s.applied[0]);
            },
        )
        .step_rw(
            "unlock-s0",
            &[],
            &[V_SHARD0_MUTEX],
            move |s: &mut ShardModel| {
                s.locks[0].release(tid);
            },
        )
        .guarded(
            "lock-s1",
            &[V_SHARD1_MUTEX],
            &[V_SHARD1_MUTEX],
            |s: &ShardModel| s.locks[1].is_free(),
            move |s: &mut ShardModel| s.locks[1].acquire(tid),
        )
        .step_rw(
            "copy-s1",
            &[V_SHARD1_DATA],
            &[V_SNAP],
            |s: &mut ShardModel| {
                s.snap[1] = Some(s.applied[1]);
            },
        )
        .step_rw(
            "unlock-s1",
            &[],
            &[V_SHARD1_MUTEX],
            move |s: &mut ShardModel| {
                s.locks[1].release(tid);
            },
        )
}

/// Two requesters on distinct shards race a full snapshot pass: no
/// schedule deadlocks, no lock protocol break, and every per-shard copy
/// is a value that shard actually held (0..=cycles, monotone under its
/// own lock). This is the deadlock-freedom argument for the shard-lock
/// scheme: every thread holds at most one shard lock at any moment, so
/// no hold-and-wait cycle can form.
#[test]
fn shard_locks_requesters_vs_snapshot_never_deadlock() {
    const CYCLES: usize = 2;
    let out = explore(
        &ShardModel::new(),
        &[
            shard_requester(0, 0, CYCLES),
            shard_requester(1, 1, CYCLES),
            shard_snapshotter(2),
        ],
        |s| {
            s.check()?;
            for i in 0..2 {
                if let Some(v) = s.snap[i] {
                    if v > CYCLES as u64 {
                        return Err(format!("shard {i} snapshot {v} exceeds all inserts"));
                    }
                }
            }
            Ok(())
        },
        &[V_SHARD0_MUTEX, V_SHARD1_MUTEX, V_SNAP],
        Config::default(),
    );
    assert!(
        out.passed(),
        "one-lock-at-a-time snapshot must be deadlock-free: {out:?}"
    );
}

/// The iter contract is per-shard consistency, NOT a global cut — and
/// that weaker contract is the strongest one available: with a writer
/// inserting into shard 0 then shard 1 (in program order), some schedule
/// yields the combined snapshot (0, 1), a state the cache never globally
/// held. The checker must find that schedule; the DESIGN.md §14 wording
/// ("shard-by-shard consistent, no cross-shard cut") documents exactly
/// this.
#[test]
fn shard_snapshot_is_not_a_global_cut_and_docs_say_so() {
    let writer = MockThread::new("writer")
        .guarded(
            "lock-s0",
            &[V_SHARD0_MUTEX],
            &[V_SHARD0_MUTEX],
            |s: &ShardModel| s.locks[0].is_free(),
            |s: &mut ShardModel| s.locks[0].acquire(0),
        )
        .step_rw(
            "insert-s0",
            &[V_SHARD0_DATA],
            &[V_SHARD0_DATA],
            |s: &mut ShardModel| {
                s.applied[0] += 1;
            },
        )
        .step_rw("unlock-s0", &[], &[V_SHARD0_MUTEX], |s: &mut ShardModel| {
            s.locks[0].release(0);
        })
        .guarded(
            "lock-s1",
            &[V_SHARD1_MUTEX],
            &[V_SHARD1_MUTEX],
            |s: &ShardModel| s.locks[1].is_free(),
            |s: &mut ShardModel| s.locks[1].acquire(0),
        )
        .step_rw(
            "insert-s1",
            &[V_SHARD1_DATA],
            &[V_SHARD1_DATA],
            |s: &mut ShardModel| {
                s.applied[1] += 1;
            },
        )
        .step_rw("unlock-s1", &[], &[V_SHARD1_MUTEX], |s: &mut ShardModel| {
            s.locks[1].release(0);
        });
    // The writer's global states, in order: (0,0) -> (1,0) -> (1,1).
    // Demanding the snapshot be one of those is demanding a global cut.
    let out = explore(
        &ShardModel::new(),
        &[writer, shard_snapshotter(1)],
        |s| {
            s.check()?;
            if let [Some(a), Some(b)] = s.snap {
                let is_global_cut = matches!((a, b), (0, 0) | (1, 0) | (1, 1));
                if !is_global_cut {
                    return Err(format!("snapshot ({a}, {b}) is not a global cut"));
                }
            }
            Ok(())
        },
        &[V_SHARD0_MUTEX, V_SHARD1_MUTEX, V_SNAP],
        Config::default(),
    );
    match out {
        Outcome::InvariantViolation { message, .. } => {
            assert!(
                message.contains("(0, 1)"),
                "the torn cut is shard0-early/shard1-late: {message}"
            );
        }
        other => unreachable!(
            "a per-shard snapshot cannot be a global cut; the checker must \
             find the (0, 1) schedule, got {other:?}"
        ),
    }
}

/// Seeded violation: break the one-lock-at-a-time discipline with two
/// threads taking both shard locks in opposite orders — the classic
/// hold-and-wait cycle the real aggregation paths avoid by construction.
/// The checker must report the deadlock.
#[test]
fn shard_lock_order_inversion_deadlocks_and_is_caught() {
    let forward = MockThread::new("fwd")
        .guarded(
            "lock-s0",
            &[V_SHARD0_MUTEX],
            &[V_SHARD0_MUTEX],
            |s: &ShardModel| s.locks[0].is_free(),
            |s: &mut ShardModel| s.locks[0].acquire(0),
        )
        .guarded(
            "lock-s1",
            &[V_SHARD1_MUTEX],
            &[V_SHARD1_MUTEX],
            |s: &ShardModel| s.locks[1].is_free(),
            |s: &mut ShardModel| s.locks[1].acquire(0),
        )
        .step_rw("unlock-s1", &[], &[V_SHARD1_MUTEX], |s: &mut ShardModel| {
            s.locks[1].release(0);
        })
        .step_rw("unlock-s0", &[], &[V_SHARD0_MUTEX], |s: &mut ShardModel| {
            s.locks[0].release(0);
        });
    let backward = MockThread::new("bwd")
        .guarded(
            "lock-s1",
            &[V_SHARD1_MUTEX],
            &[V_SHARD1_MUTEX],
            |s: &ShardModel| s.locks[1].is_free(),
            |s: &mut ShardModel| s.locks[1].acquire(1),
        )
        .guarded(
            "lock-s0",
            &[V_SHARD0_MUTEX],
            &[V_SHARD0_MUTEX],
            |s: &ShardModel| s.locks[0].is_free(),
            |s: &mut ShardModel| s.locks[0].acquire(1),
        )
        .step_rw("unlock-s0", &[], &[V_SHARD0_MUTEX], |s: &mut ShardModel| {
            s.locks[0].release(1);
        })
        .step_rw("unlock-s1", &[], &[V_SHARD1_MUTEX], |s: &mut ShardModel| {
            s.locks[1].release(1);
        });
    let out = explore(
        &ShardModel::new(),
        &[forward, backward],
        ShardModel::check,
        &[V_SHARD0_MUTEX, V_SHARD1_MUTEX],
        Config::default(),
    );
    match out {
        Outcome::Deadlock { blocked, .. } => {
            assert!(
                blocked.contains(&"fwd".to_string()) && blocked.contains(&"bwd".to_string()),
                "both inverted lockers wedge: {blocked:?}"
            );
        }
        other => unreachable!("lock-order inversion must deadlock somewhere, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// ConnectionPool: checkout / checkin under `pool_idle`
// (crates/net/src/pool.rs)
// ---------------------------------------------------------------------------

const V_POOL_MUTEX: VarId = 50;
const V_POOL_IDLE: VarId = 51;
const V_POOL_OUT: VarId = 52;

/// The modeled per-host idle cap.
const POOL_CAP: usize = 1;

/// The pool's shared plane for one host: the parked-connection list
/// behind the `pool_idle` mutex, plus ghost state tracking which thread
/// holds which connection. `pool_idle` is a leaf lock in the real code —
/// connects, drops and joins all happen outside the guard — so the model
/// has no second lock to order against.
#[derive(Clone)]
struct PoolModel {
    m: MockMutex,
    /// Parked connection ids (one host).
    idle: Vec<u64>,
    /// (thread, conn) pairs currently checked out.
    held: Vec<(usize, u64)>,
    /// Connections dropped by the cap eviction.
    evicted: Vec<u64>,
    /// Per-thread checkout result: pool miss → fresh connect.
    miss: [bool; 2],
    /// Per-thread unlocked peek (racy variant only).
    peeked: [Option<u64>; 2],
    done: [bool; 2],
}

impl PoolModel {
    /// One connection already parked: both clients race to reuse it.
    fn new() -> Self {
        Self {
            m: MockMutex::new(V_POOL_MUTEX),
            idle: vec![7],
            held: Vec::new(),
            evicted: Vec::new(),
            miss: [false; 2],
            peeked: [None; 2],
            done: [false; 2],
        }
    }

    fn check(&self) -> Result<(), String> {
        if self.m.poisoned() {
            return Err("pool_idle mutex protocol violated".to_string());
        }
        if self.idle.len() > POOL_CAP {
            return Err(format!("idle list over cap: {}", self.idle.len()));
        }
        // A connection is in exactly one place: parked, held by one
        // thread, or evicted. A duplicate means the same socket was
        // handed to two requests at once.
        let mut ids: Vec<u64> = self
            .idle
            .iter()
            .copied()
            .chain(self.held.iter().map(|&(_, id)| id))
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != n {
            return Err("one connection handed out or parked twice".to_string());
        }
        Ok(())
    }
}

/// The real checkout/checkin flow: pop and push+evict each atomic under
/// the `pool_idle` lock, the fresh connect outside it.
fn pool_client(tid: usize) -> MockThread<PoolModel> {
    let name = if tid == 0 { "client-a" } else { "client-b" };
    MockThread::new(name)
        .guarded(
            "lock-checkout",
            &[V_POOL_MUTEX],
            &[V_POOL_MUTEX],
            |s: &PoolModel| s.m.is_free(),
            move |s: &mut PoolModel| s.m.acquire(tid),
        )
        .step_rw(
            "checkout-pop",
            &[V_POOL_IDLE],
            &[V_POOL_IDLE, V_POOL_OUT],
            move |s: &mut PoolModel| {
                if let Some(id) = s.idle.pop() {
                    s.held.push((tid, id));
                } else {
                    s.miss[tid] = true;
                }
            },
        )
        .step_rw(
            "unlock-checkout",
            &[],
            &[V_POOL_MUTEX],
            move |s: &mut PoolModel| s.m.release(tid),
        )
        .step_rw(
            "connect-outside-lock",
            &[],
            &[V_POOL_OUT],
            move |s: &mut PoolModel| {
                if s.miss[tid] {
                    // Fresh sockets are unique by construction.
                    s.held.push((tid, 100 + tid as u64));
                }
            },
        )
        .guarded(
            "lock-checkin",
            &[V_POOL_MUTEX],
            &[V_POOL_MUTEX],
            |s: &PoolModel| s.m.is_free(),
            move |s: &mut PoolModel| s.m.acquire(tid),
        )
        .step_rw(
            "checkin-push-evict",
            &[V_POOL_IDLE, V_POOL_OUT],
            &[V_POOL_IDLE, V_POOL_OUT],
            move |s: &mut PoolModel| {
                let at = s
                    .held
                    .iter()
                    .position(|&(t, _)| t == tid)
                    .expect("thread checks in its own connection");
                let (_, id) = s.held.remove(at);
                s.idle.push(id);
                if s.idle.len() > POOL_CAP {
                    let evicted = s.idle.remove(0);
                    s.evicted.push(evicted);
                }
            },
        )
        .step_rw(
            "unlock-checkin",
            &[],
            &[V_POOL_MUTEX],
            move |s: &mut PoolModel| {
                s.m.release(tid);
                s.done[tid] = true;
            },
        )
}

/// Every interleaving of two clients holds the pool invariants: the cap
/// is never exceeded, and no parked connection is handed out twice.
#[test]
fn pool_checkout_checkin_holds_cap_and_uniqueness() {
    let out = explore(
        &PoolModel::new(),
        &[pool_client(0), pool_client(1)],
        |s| {
            s.check()?;
            if s.done[0] && s.done[1] {
                // Both checked in; the cap evicted the overflow.
                if s.idle.len() != POOL_CAP || !s.held.is_empty() {
                    return Err(format!(
                        "final state wrong: idle={:?} held={:?}",
                        s.idle, s.held
                    ));
                }
            }
            Ok(())
        },
        &[V_POOL_MUTEX, V_POOL_IDLE, V_POOL_OUT],
        Config::default(),
    );
    assert!(
        out.passed(),
        "pooled checkout must hold everywhere: {out:?}"
    );
}

/// Seeded violation: a checkout that peeks and takes the parked
/// connection without the lock. Two clients can both observe the same
/// head and both walk away with connection 7 — the checker must catch
/// the double handout.
#[test]
fn pool_unlocked_checkout_double_handout_is_caught() {
    let racy = |tid: usize| {
        let name = if tid == 0 { "racy-a" } else { "racy-b" };
        MockThread::new(name)
            .step_rw(
                "peek-unlocked",
                &[V_POOL_IDLE],
                &[V_POOL_OUT],
                move |s: &mut PoolModel| {
                    s.peeked[tid] = s.idle.first().copied();
                },
            )
            .step_rw(
                "take-unlocked",
                &[V_POOL_IDLE],
                &[V_POOL_IDLE, V_POOL_OUT],
                move |s: &mut PoolModel| {
                    if let Some(id) = s.peeked[tid] {
                        if s.idle.first() == Some(&id) {
                            s.idle.remove(0);
                        }
                        s.held.push((tid, id));
                    }
                },
            )
    };
    let out = explore(
        &PoolModel::new(),
        &[racy(0), racy(1)],
        PoolModel::check,
        &[V_POOL_MUTEX, V_POOL_IDLE, V_POOL_OUT],
        Config::default(),
    );
    assert!(
        matches!(out, Outcome::InvariantViolation { .. }),
        "the unlocked double handout must be caught: {out:?}"
    );
}
