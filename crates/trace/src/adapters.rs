//! Adapters from real proxy log formats to [`Trace`].
//!
//! The paper replays the Boston University proxy logs; anyone adopting
//! this library will have Squid access logs or Apache-style Common Log
//! Format instead. These parsers intern client hosts and URLs into dense
//! ids, rebase timestamps to the first record, and apply the paper's
//! zero-size patch.

use crate::generate::Trace;
use coopcache_types::{ByteSize, ClientId, DocId, Request, Timestamp};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead};

/// Supported real-world log formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogFormat {
    /// Squid's native `access.log`:
    /// `time.ms elapsed client action/code size method url ident hierarchy type`.
    SquidNative,
    /// Apache/NCSA Common Log Format:
    /// `host ident user [dd/Mon/yyyy:HH:MM:SS zone] "METHOD url PROTO" status bytes`.
    CommonLog,
}

impl fmt::Display for LogFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::SquidNative => f.write_str("squid-native"),
            Self::CommonLog => f.write_str("common-log"),
        }
    }
}

/// A trace parsed from a real log, with the interning tables needed to
/// map ids back to hosts and URLs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParsedLog {
    /// The replayable trace (timestamps rebased to the first record).
    pub trace: Trace,
    /// `urls[doc_id]` = the original URL.
    pub urls: Vec<String>,
    /// `clients[client_id]` = the original client host.
    pub clients: Vec<String>,
    /// Lines skipped because they were malformed or non-GET.
    pub skipped_lines: u64,
}

/// Error reading a real-world log.
#[derive(Debug)]
pub enum ParseLogError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// No parseable record was found at all (probably the wrong format).
    NoRecords,
}

impl fmt::Display for ParseLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "log i/o error: {e}"),
            Self::NoRecords => f.write_str("no parseable records (wrong log format?)"),
        }
    }
}

impl std::error::Error for ParseLogError {}

impl From<io::Error> for ParseLogError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

#[derive(Debug, Default)]
struct Interner {
    ids: HashMap<String, u64>,
    names: Vec<String>,
}

impl Interner {
    fn intern(&mut self, name: &str) -> u64 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u64;
        self.ids.insert(name.to_owned(), id);
        self.names.push(name.to_owned());
        id
    }
}

/// Parses a real proxy log into a replayable trace.
///
/// Malformed lines are skipped (and counted), matching how trace tools
/// treat the noisy logs of real deployments. Records with a zero size
/// receive `zero_size_patch` — the paper patches BU's zero-size records
/// to the 4 KB average.
///
/// # Errors
///
/// Returns [`ParseLogError::Io`] on reader failure and
/// [`ParseLogError::NoRecords`] when nothing parseable was found.
///
/// # Example
///
/// ```
/// use coopcache_trace::{parse_log, LogFormat};
/// use coopcache_types::ByteSize;
///
/// let log = "\
/// 894395924.192 1374 host-a TCP_MISS/200 3448 GET http://x.org/a - DIRECT/x text/html
/// 894395930.500  120 host-b TCP_HIT/200 3448 GET http://x.org/a - NONE/- text/html
/// ";
/// let parsed = parse_log(log.as_bytes(), LogFormat::SquidNative,
///                        ByteSize::from_kb(4)).unwrap();
/// assert_eq!(parsed.trace.len(), 2);
/// assert_eq!(parsed.urls.len(), 1); // same URL interned once
/// ```
pub fn parse_log<R: io::Read>(
    reader: R,
    format: LogFormat,
    zero_size_patch: ByteSize,
) -> Result<ParsedLog, ParseLogError> {
    let reader = io::BufReader::new(reader);
    let mut urls = Interner::default();
    let mut clients = Interner::default();
    let mut raw: Vec<(u64, u32, u64, u64)> = Vec::new(); // (ms, client, doc, size)
    let mut skipped = 0u64;
    for line in reader.lines() {
        let line = line?;
        let parsed = match format {
            LogFormat::SquidNative => parse_squid_line(&line),
            LogFormat::CommonLog => parse_clf_line(&line),
        };
        match parsed {
            Some((ms, client, url, size)) => {
                let doc = urls.intern(url);
                let client = clients.intern(client) as u32;
                raw.push((ms, client, doc, size));
            }
            None => {
                if !line.trim().is_empty() {
                    skipped += 1;
                }
            }
        }
    }
    let Some(t0) = raw.iter().map(|r| r.0).min() else {
        return Err(ParseLogError::NoRecords);
    };
    let requests: Vec<Request> = raw
        .into_iter()
        .map(|(ms, client, doc, size)| {
            let size = if size == 0 {
                zero_size_patch
            } else {
                ByteSize::from_bytes(size)
            };
            Request::new(
                Timestamp::from_millis(ms - t0),
                ClientId::new(client),
                DocId::new(doc),
                size,
            )
        })
        .collect();
    Ok(ParsedLog {
        trace: Trace::from_requests(requests),
        urls: urls.names,
        clients: clients.names,
        skipped_lines: skipped,
    })
}

/// One Squid native line → (millis, client, url, size).
fn parse_squid_line(line: &str) -> Option<(u64, &str, &str, u64)> {
    let mut fields = line.split_whitespace();
    let time = fields.next()?; // seconds.millis
    let _elapsed = fields.next()?;
    let client = fields.next()?;
    let _action_code = fields.next()?;
    let size: u64 = fields.next()?.parse().ok()?;
    let method = fields.next()?;
    let url = fields.next()?;
    if method != "GET" {
        return None;
    }
    let (secs, millis) = match time.split_once('.') {
        Some((s, m)) => (s.parse::<u64>().ok()?, m.get(..3)?.parse::<u64>().ok()?),
        None => (time.parse::<u64>().ok()?, 0),
    };
    Some((secs * 1_000 + millis, client, url, size))
}

/// One Common Log Format line → (millis, client, url, size).
fn parse_clf_line(line: &str) -> Option<(u64, &str, &str, u64)> {
    // host ident user [date] "METHOD url PROTO" status bytes
    let mut head = line.split_whitespace();
    let host = head.next()?;
    let _ident = head.next()?;
    let _user = head.next()?;
    let open = line.find('[')?;
    let close = line[open..].find(']')? + open;
    let stamp = &line[open + 1..close];
    let q1 = line[close..].find('"')? + close;
    let q2 = line[q1 + 1..].find('"')? + q1 + 1;
    let request = &line[q1 + 1..q2];
    let mut req_fields = request.split_whitespace();
    let method = req_fields.next()?;
    let url = req_fields.next()?;
    if method != "GET" {
        return None;
    }
    let mut tail = line[q2 + 1..].split_whitespace();
    let _status = tail.next()?;
    let size_field = tail.next()?;
    let size: u64 = if size_field == "-" {
        0
    } else {
        size_field.parse().ok()?
    };
    Some((clf_timestamp_millis(stamp)?, host, url, size))
}

/// Parses `dd/Mon/yyyy:HH:MM:SS zone` to epoch milliseconds (zone
/// ignored — simulations only need relative ordering).
fn clf_timestamp_millis(stamp: &str) -> Option<u64> {
    let stamp = stamp.split_whitespace().next()?;
    let mut parts = stamp.split(':');
    let date = parts.next()?;
    let hh: u64 = parts.next()?.parse().ok()?;
    let mm: u64 = parts.next()?.parse().ok()?;
    let ss: u64 = parts.next()?.parse().ok()?;
    let mut dmy = date.split('/');
    let day: u64 = dmy.next()?.parse().ok()?;
    let month = match dmy.next()? {
        "Jan" => 1,
        "Feb" => 2,
        "Mar" => 3,
        "Apr" => 4,
        "May" => 5,
        "Jun" => 6,
        "Jul" => 7,
        "Aug" => 8,
        "Sep" => 9,
        "Oct" => 10,
        "Nov" => 11,
        "Dec" => 12,
        _ => return None,
    };
    let year: u64 = dmy.next()?.parse().ok()?;
    if !(1..=31).contains(&day) || hh > 23 || mm > 59 || ss > 60 || year < 1970 {
        return None;
    }
    // Howard Hinnant's days-from-civil algorithm.
    let y = if month <= 2 { year - 1 } else { year };
    let era = y / 400;
    let yoe = y - era * 400;
    let mp = (month + 9) % 12;
    let doy = (153 * mp + 2) / 5 + day - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    let days = era * 146_097 + doe - 719_468;
    Some(((days * 24 + hh) * 60 + mm) * 60_000 + ss * 1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SQUID: &str = "\
894395924.192 1374 10.0.0.1 TCP_MISS/200 3448 GET http://x.org/a - DIRECT/x text/html
894395925.000  120 10.0.0.2 TCP_HIT/200 3448 GET http://x.org/a - NONE/- text/html
894395926.500   88 10.0.0.1 TCP_MISS/200 0 GET http://x.org/b - DIRECT/x image/gif
894395927.000   10 10.0.0.1 TCP_MISS/200 512 POST http://x.org/form - DIRECT/x text/html
garbage line that should be skipped
";

    #[test]
    fn squid_parsing() {
        let p = parse_log(
            SQUID.as_bytes(),
            LogFormat::SquidNative,
            ByteSize::from_kb(4),
        )
        .unwrap();
        assert_eq!(p.trace.len(), 3, "POST and garbage skipped");
        assert_eq!(p.skipped_lines, 2);
        assert_eq!(p.urls, vec!["http://x.org/a", "http://x.org/b"]);
        assert_eq!(p.clients, vec!["10.0.0.1", "10.0.0.2"]);
        let reqs = p.trace.requests();
        // Rebased to the first record.
        assert_eq!(reqs[0].time, Timestamp::ZERO);
        assert_eq!(reqs[1].time, Timestamp::from_millis(808));
        // Zero-size record patched to 4 KB.
        assert_eq!(reqs[2].size, ByteSize::from_kb(4));
        // Same URL, same doc id.
        assert_eq!(reqs[0].doc, reqs[1].doc);
        assert_ne!(reqs[0].client, reqs[1].client);
    }

    const CLF: &str = "\
alpha.example.com - - [10/Oct/2000:13:55:36 -0700] \"GET /apache_pb.gif HTTP/1.0\" 200 2326
beta.example.com - frank [10/Oct/2000:13:55:40 -0700] \"GET /apache_pb.gif HTTP/1.0\" 200 2326
alpha.example.com - - [10/Oct/2000:13:56:00 -0700] \"GET /index.html HTTP/1.0\" 200 -
alpha.example.com - - [10/Oct/2000:13:56:05 -0700] \"HEAD /index.html HTTP/1.0\" 200 0
";

    #[test]
    fn clf_parsing() {
        let p = parse_log(CLF.as_bytes(), LogFormat::CommonLog, ByteSize::from_kb(4)).unwrap();
        assert_eq!(p.trace.len(), 3, "HEAD skipped");
        assert_eq!(p.skipped_lines, 1);
        let reqs = p.trace.requests();
        assert_eq!(reqs[0].time, Timestamp::ZERO);
        assert_eq!(reqs[1].time, Timestamp::from_millis(4_000));
        assert_eq!(reqs[2].time, Timestamp::from_millis(24_000));
        // "-" size patched.
        assert_eq!(reqs[2].size, ByteSize::from_kb(4));
        assert_eq!(p.urls.len(), 2);
        assert_eq!(p.clients.len(), 2);
    }

    #[test]
    fn empty_or_garbage_log_is_an_error() {
        assert!(matches!(
            parse_log("".as_bytes(), LogFormat::SquidNative, ByteSize::ZERO),
            Err(ParseLogError::NoRecords)
        ));
        assert!(matches!(
            parse_log(
                "junk\nmore junk\n".as_bytes(),
                LogFormat::CommonLog,
                ByteSize::ZERO
            ),
            Err(ParseLogError::NoRecords)
        ));
    }

    #[test]
    fn clf_timestamp_arithmetic() {
        // 1 Jan 1970 00:00:00 is the epoch.
        assert_eq!(clf_timestamp_millis("01/Jan/1970:00:00:00 +0000"), Some(0));
        // One day later.
        assert_eq!(
            clf_timestamp_millis("02/Jan/1970:00:00:00 +0000"),
            Some(86_400_000)
        );
        // Leap-year handling: 29 Feb 2000 is valid and ordered.
        let feb28 = clf_timestamp_millis("28/Feb/2000:00:00:00 +0000").unwrap();
        let feb29 = clf_timestamp_millis("29/Feb/2000:00:00:00 +0000").unwrap();
        let mar01 = clf_timestamp_millis("01/Mar/2000:00:00:00 +0000").unwrap();
        assert_eq!(feb29 - feb28, 86_400_000);
        assert_eq!(mar01 - feb29, 86_400_000);
        // Rejects nonsense.
        assert_eq!(clf_timestamp_millis("32/Jan/2000:00:00:00 +0000"), None);
        assert_eq!(clf_timestamp_millis("01/Foo/2000:00:00:00 +0000"), None);
        assert_eq!(clf_timestamp_millis("01/Jan/2000:25:00:00 +0000"), None);
    }

    #[test]
    fn squid_time_without_millis() {
        let line = "894395924 10 host TCP_MISS/200 100 GET http://a/ - D/x t";
        let p = parse_squid_line(line).unwrap();
        assert_eq!(p.0, 894_395_924_000);
    }

    #[test]
    fn display_names() {
        assert_eq!(LogFormat::SquidNative.to_string(), "squid-native");
        assert_eq!(LogFormat::CommonLog.to_string(), "common-log");
    }
}
