//! A small, seeded, splittable pseudo-random number generator.
//!
//! Workload generation must be bit-for-bit reproducible across runs and
//! platforms, so the workspace carries its own PRNG rather than depending on
//! an external crate whose stream might change between versions. The
//! generator is xoshiro256** (Blackman & Vigna), seeded through SplitMix64 —
//! the standard recommendation for seeding xoshiro from a single `u64`.

/// A seeded xoshiro256** generator.
///
/// Not cryptographically secure; statistically excellent and extremely fast,
/// which is all a workload generator needs.
///
/// # Example
///
/// ```
/// use coopcache_trace::Rng;
/// let mut a = Rng::seed_from(42);
/// let mut b = Rng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

impl Rng {
    /// Creates a generator from a single seed value via SplitMix64.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let state = [next(), next(), next(), next()];
        Self { state }
    }

    /// Derives an independent child generator; useful for giving each
    /// trace component (sizes, popularity, timing) its own stream so that
    /// changing one component does not perturb the others.
    #[must_use]
    pub fn split(&mut self) -> Self {
        Self::seed_from(self.next_u64())
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Returns a uniform float in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform float in `(0, 1]`, safe as a `ln()` argument.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's unbiased
    /// multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: only u64::MAX % bound + 1 values rejected.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == u64::MIN && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "cannot choose from an empty slice");
        &slice[self.next_below(slice.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from(1);
        let mut b = Rng::seed_from(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = Rng::seed_from(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn next_below_is_in_bounds_and_roughly_uniform() {
        let mut r = Rng::seed_from(5);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10) as usize] += 1;
        }
        for c in counts {
            // Expected 10_000 per bucket; allow 10% slack.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn next_in_range_inclusive_endpoints() {
        let mut r = Rng::seed_from(6);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let x = r.next_in_range(3, 5);
            assert!((3..=5).contains(&x));
            seen_lo |= x == 3;
            seen_hi |= x == 5;
        }
        assert!(seen_lo && seen_hi);
        assert_eq!(r.next_in_range(7, 7), 7);
    }

    #[test]
    fn full_u64_range_does_not_hang() {
        let mut r = Rng::seed_from(11);
        let _ = r.next_in_range(u64::MIN, u64::MAX);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Rng::seed_from(0).next_below(0);
    }

    #[test]
    fn bool_probability() {
        let mut r = Rng::seed_from(7);
        let hits = (0..100_000).filter(|_| r.next_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits {hits}");
        assert!(!Rng::seed_from(8).next_bool(0.0));
        assert!(Rng::seed_from(8).next_bool(1.0 + f64::EPSILON));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::seed_from(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }

    #[test]
    fn split_streams_are_independent_of_parent_consumption() {
        let mut parent1 = Rng::seed_from(10);
        let child1 = parent1.split();
        let mut parent2 = Rng::seed_from(10);
        let child2 = parent2.split();
        assert_eq!(child1, child2);
        assert_ne!(child1, parent1);
    }

    #[test]
    fn choose_returns_member() {
        let mut r = Rng::seed_from(12);
        let v = [1, 2, 3];
        for _ in 0..100 {
            assert!(v.contains(r.choose(&v)));
        }
    }
}
