//! The workload generator: turns a [`TraceProfile`] into a [`Trace`].

use crate::dist::{Distribution, Exponential, InvalidParamError, LogNormal, Pareto, Zipf};
use crate::profile::TraceProfile;
use crate::rng::Rng;
use coopcache_types::{ByteSize, ClientId, DocId, DurationMs, Request, Timestamp};
use std::collections::VecDeque;

/// A complete, time-ordered synthetic workload.
///
/// Produced by [`generate`]; consumed by the simulator, the trace file
/// writer, and the statistics reporter.
///
/// # Example
///
/// ```
/// use coopcache_trace::{generate, TraceProfile};
/// let trace = generate(&TraceProfile::small()).unwrap();
/// assert!(trace.stats().unique_docs > 0);
/// let first = trace.requests().first().unwrap();
/// let last = trace.requests().last().unwrap();
/// assert!(first.time <= last.time);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    requests: Vec<Request>,
}

impl Trace {
    /// Wraps an already time-ordered list of requests.
    ///
    /// Out-of-order inputs are sorted (stably) by timestamp so that every
    /// `Trace` upholds the chronological invariant.
    #[must_use]
    pub fn from_requests(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| r.time);
        Self { requests }
    }

    /// The records, in chronological order.
    #[must_use]
    pub fn requests(&self) -> &[Request] {
        &self.requests
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when the trace holds no records.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, Request> {
        self.requests.iter()
    }

    /// Computes aggregate statistics over the trace.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        TraceStats::from_requests(&self.requests)
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Request;
    type IntoIter = std::slice::Iter<'a, Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.iter()
    }
}

impl IntoIterator for Trace {
    type Item = Request;
    type IntoIter = std::vec::IntoIter<Request>;
    fn into_iter(self) -> Self::IntoIter {
        self.requests.into_iter()
    }
}

impl FromIterator<Request> for Trace {
    fn from_iter<I: IntoIterator<Item = Request>>(iter: I) -> Self {
        Self::from_requests(iter.into_iter().collect())
    }
}

/// Aggregate statistics of a trace; compare against the BU-94 numbers the
/// paper reports (575,775 records / 46,830 unique / 591 users).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Total records.
    pub requests: usize,
    /// Distinct documents referenced.
    pub unique_docs: usize,
    /// Distinct clients appearing.
    pub unique_clients: usize,
    /// Sum of sizes over all records.
    pub total_bytes: ByteSize,
    /// Sum of sizes over distinct documents (the group's compulsory
    /// working-set size: an aggregate cache this large can hold everything).
    pub unique_bytes: ByteSize,
    /// Time of the first record.
    pub start: Timestamp,
    /// Time of the last record.
    pub end: Timestamp,
}

impl TraceStats {
    /// Computes statistics from a record slice.
    #[must_use]
    pub fn from_requests(requests: &[Request]) -> Self {
        use std::collections::{HashMap, HashSet};
        let mut docs: HashMap<DocId, ByteSize> = HashMap::new();
        let mut clients: HashSet<ClientId> = HashSet::new();
        let mut total = ByteSize::ZERO;
        let mut start = Timestamp::from_millis(u64::MAX);
        let mut end = Timestamp::ZERO;
        for r in requests {
            docs.entry(r.doc).or_insert(r.size);
            clients.insert(r.client);
            total += r.size;
            start = start.min(r.time);
            end = end.max(r.time);
        }
        if requests.is_empty() {
            start = Timestamp::ZERO;
        }
        Self {
            requests: requests.len(),
            unique_docs: docs.len(),
            unique_clients: clients.len(),
            total_bytes: total,
            unique_bytes: docs.values().copied().sum(),
            start,
            end,
        }
    }

    /// Mean document size over distinct documents (zero if empty).
    #[must_use]
    pub fn mean_doc_size(&self) -> ByteSize {
        if self.unique_docs == 0 {
            ByteSize::ZERO
        } else {
            ByteSize::from_bytes(self.unique_bytes.as_bytes() / self.unique_docs as u64)
        }
    }
}

/// Generates a deterministic synthetic trace from a profile.
///
/// The generator uses independent PRNG streams for document sizes, session
/// placement, popularity and temporal locality, so changing one profile knob
/// does not reshuffle unrelated aspects of the workload.
///
/// # Errors
///
/// Returns [`InvalidParamError`] if the profile fails
/// [`TraceProfile::validate`].
///
/// # Example
///
/// ```
/// use coopcache_trace::{generate, TraceProfile};
/// let a = generate(&TraceProfile::small()).unwrap();
/// let b = generate(&TraceProfile::small()).unwrap();
/// assert_eq!(a, b); // same profile, same trace
/// ```
pub fn generate(profile: &TraceProfile) -> Result<Trace, InvalidParamError> {
    profile.validate()?;
    let mut root = Rng::seed_from(profile.seed);
    let mut rng_size = root.split();
    let mut rng_session = root.split();
    let mut rng_pop = root.split();
    let mut rng_local = root.split();
    let mut rng_flash = root.split();
    let flash_seed = root.next_u64();

    let sizes = document_sizes(profile, &mut rng_size);
    let popularity = Zipf::new(profile.unique_docs, profile.zipf_alpha)?;
    let think = Exponential::new(profile.think_time_mean.as_millis() as f64)?;

    // --- Sessions: owner client, start time, share of the request budget.
    // Session ownership follows a Zipf over clients: real proxy user
    // populations are heavily skewed, which skews per-cache load and
    // therefore per-cache disk contention — the asymmetry the EA scheme's
    // expiration-age comparisons feed on.
    let n_sessions = profile.sessions as usize;
    let activity = Zipf::new(u64::from(profile.clients), profile.client_activity_skew)?;
    let mut owners: Vec<ClientId> = (0..n_sessions)
        .map(|_| ClientId::new((activity.sample(&mut rng_session) - 1) as u32))
        .collect();
    rng_session.shuffle(&mut owners);
    let mut starts: Vec<Timestamp> = (0..n_sessions)
        .map(|_| Timestamp::from_millis(rng_session.next_below(profile.horizon.as_millis())))
        .collect();
    starts.sort_unstable();
    // Request budget per session: proportional shares drawn from an
    // exponential (so session lengths are skewed, as in real logs), with
    // every session guaranteed at least one request when budget allows.
    let weights: Vec<f64> = (0..n_sessions)
        .map(|_| -rng_session.next_f64_open().ln())
        .collect();
    let weight_sum: f64 = weights.iter().sum();
    let mut budgets: Vec<usize> = weights
        .iter()
        .map(|w| ((w / weight_sum) * profile.requests as f64).floor() as usize)
        .collect();
    let mut assigned: usize = budgets.iter().sum();
    // Distribute the rounding remainder one request at a time.
    let mut i = 0;
    while assigned < profile.requests {
        budgets[i % n_sessions] += 1;
        assigned += 1;
        i += 1;
    }

    // --- Per-client recent-history windows for temporal locality.
    let mut history: Vec<VecDeque<DocId>> =
        vec![VecDeque::with_capacity(profile.locality_window); profile.clients as usize];

    // --- Flash-crowd state: the currently hot shared set, rotated per
    // epoch; lazily (re)derived so the epoch sequence is deterministic no
    // matter in which order sessions touch it.
    let mut flash_cache: (u64, Vec<DocId>) = (u64::MAX, Vec::new());
    let flash_doc = |epoch: u64, rng: &mut Rng, cache: &mut (u64, Vec<DocId>)| -> DocId {
        if cache.0 != epoch {
            let mut epoch_rng =
                Rng::seed_from(flash_seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            cache.1 = (0..profile.flash_docs.max(1))
                .map(|_| DocId::new(popularity.sample(&mut epoch_rng)))
                .collect();
            cache.0 = epoch;
        }
        *rng.choose(&cache.1)
    };

    let mut requests = Vec::with_capacity(profile.requests);
    for s in 0..n_sessions {
        let client = owners[s];
        let mut t = starts[s];
        for _ in 0..budgets[s] {
            let hist = &mut history[client.as_u32() as usize];
            let doc = if rng_flash.next_bool(profile.flash_probability) {
                // Cross-client flash traffic: everyone shares the same
                // currently-hot documents within an epoch.
                let epoch = t.as_millis() / profile.flash_epoch.as_millis().max(1);
                flash_doc(epoch, &mut rng_flash, &mut flash_cache)
            } else if !hist.is_empty() && rng_local.next_bool(profile.locality_probability) {
                // Re-reference a recent document, biased toward the newest.
                let idx = recency_biased_index(&mut rng_local, hist.len());
                hist[idx]
            } else {
                DocId::new(popularity.sample(&mut rng_pop))
            };
            if hist.back() != Some(&doc) {
                if hist.len() == profile.locality_window {
                    hist.pop_front();
                }
                hist.push_back(doc);
            }
            let size = sizes[(doc.as_u64() - 1) as usize];
            requests.push(Request::new(t, client, doc, size));
            t += DurationMs::from_millis(think.sample(&mut rng_local).max(1.0) as u64);
        }
    }

    Ok(Trace::from_requests(requests))
}

/// Draws a stable size for every document in the universe.
fn document_sizes(profile: &TraceProfile, rng: &mut Rng) -> Vec<ByteSize> {
    let body = LogNormal::new(profile.size_mu, profile.size_sigma)
        // lint:allow(panic) -- generate() validates the profile first, which
        // rejects non-finite mu/sigma, so construction cannot fail.
        .expect("profile validated lognormal params");
    let tail = Pareto::new(profile.tail_x_min.max(1.0), profile.tail_alpha.max(0.01))
        // lint:allow(panic) -- both arguments are clamped strictly positive
        // on the line above, which is all Pareto::new requires.
        .expect("profile validated pareto params");
    let (lo, hi) = profile.size_clamp;
    (0..profile.unique_docs)
        .map(|_| {
            if rng.next_bool(profile.zero_size_fraction) {
                // The original log recorded zero bytes; the paper patches
                // these to the 4 KB average document size.
                return profile.zero_size_patch;
            }
            let raw = if rng.next_bool(profile.tail_fraction) {
                tail.sample(rng)
            } else {
                body.sample(rng)
            };
            ByteSize::from_bytes((raw as u64).clamp(lo.as_bytes(), hi.as_bytes()))
        })
        .collect()
}

/// Picks an index in `0..len` biased toward the most recent entries
/// (geometric with ratio 1/2 from the back, clamped to the front).
fn recency_biased_index(rng: &mut Rng, len: usize) -> usize {
    debug_assert!(len > 0);
    let mut back_off = 0usize;
    while back_off + 1 < len && rng.next_bool(0.5) {
        back_off += 1;
    }
    len - 1 - back_off
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = TraceProfile::small();
        assert_eq!(generate(&p).unwrap(), generate(&p).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&TraceProfile::small().with_seed(1)).unwrap();
        let b = generate(&TraceProfile::small().with_seed(2)).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn exact_request_count() {
        let p = TraceProfile::small().with_requests(12_345);
        assert_eq!(generate(&p).unwrap().len(), 12_345);
    }

    #[test]
    fn trace_is_chronological() {
        let t = generate(&TraceProfile::small()).unwrap();
        for w in t.requests().windows(2) {
            assert!(w[0].time <= w[1].time);
        }
    }

    #[test]
    fn stats_are_plausible() {
        let p = TraceProfile::small();
        let t = generate(&p).unwrap();
        let s = t.stats();
        assert_eq!(s.requests, p.requests);
        // Most of the universe gets touched, but re-referencing keeps
        // uniques well below the request count.
        assert!(s.unique_docs > (p.unique_docs as usize) / 2);
        assert!(s.unique_docs <= p.unique_docs as usize);
        assert!(s.unique_clients <= p.clients as usize);
        // Activity is Zipf-skewed, so not every client need appear, but a
        // solid majority should.
        assert!(s.unique_clients > (p.clients as usize) / 3);
        assert!(s.total_bytes > s.unique_bytes);
        assert!(s.end > s.start);
        assert!(s.mean_doc_size() > ByteSize::from_bytes(500));
        assert!(s.mean_doc_size() < ByteSize::from_kb(100));
    }

    #[test]
    fn doc_sizes_are_stable_per_doc() {
        let t = generate(&TraceProfile::small()).unwrap();
        use std::collections::HashMap;
        let mut seen: HashMap<DocId, ByteSize> = HashMap::new();
        for r in &t {
            let prev = seen.insert(r.doc, r.size);
            if let Some(prev) = prev {
                assert_eq!(prev, r.size, "doc {} changed size", r.doc);
            }
        }
    }

    #[test]
    fn sizes_respect_clamp() {
        let p = TraceProfile::small();
        let t = generate(&p).unwrap();
        for r in &t {
            assert!(r.size >= p.size_clamp.0 && r.size <= p.size_clamp.1);
        }
    }

    #[test]
    fn popularity_is_skewed() {
        let t = generate(&TraceProfile::small()).unwrap();
        use std::collections::HashMap;
        let mut freq: HashMap<DocId, usize> = HashMap::new();
        for r in &t {
            *freq.entry(r.doc).or_default() += 1;
        }
        let mut counts: Vec<usize> = freq.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top10: usize = counts.iter().take(10).sum();
        // Zipf 0.75 + locality: the top 10 of 2000 documents should draw a
        // clearly disproportionate share (far above the uniform 0.5%).
        assert!(
            top10 * 100 / t.len() >= 3,
            "top-10 docs only got {top10} of {} requests",
            t.len()
        );
    }

    #[test]
    fn invalid_profile_is_rejected() {
        assert!(generate(&TraceProfile::small().with_requests(0)).is_err());
    }

    #[test]
    fn from_requests_sorts() {
        let mk = |ms| {
            Request::new(
                Timestamp::from_millis(ms),
                ClientId::new(0),
                DocId::new(1),
                ByteSize::from_bytes(1),
            )
        };
        let t = Trace::from_requests(vec![mk(5), mk(1), mk(3)]);
        let times: Vec<u64> = t.iter().map(|r| r.time.as_millis()).collect();
        assert_eq!(times, vec![1, 3, 5]);
    }

    #[test]
    fn collect_into_trace() {
        let mk = |ms| {
            Request::new(
                Timestamp::from_millis(ms),
                ClientId::new(0),
                DocId::new(1),
                ByteSize::from_bytes(1),
            )
        };
        let t: Trace = vec![mk(2), mk(1)].into_iter().collect();
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests()[0].time.as_millis(), 1);
    }

    #[test]
    fn empty_trace_stats() {
        let s = Trace::default().stats();
        assert_eq!(s.requests, 0);
        assert_eq!(s.unique_docs, 0);
        assert_eq!(s.mean_doc_size(), ByteSize::ZERO);
        assert!(Trace::default().is_empty());
    }

    #[test]
    fn bu94_scale_smoke() {
        // Generate the full-scale trace once to confirm the generator
        // handles the paper's scale; keep assertions coarse so the test
        // stays meaningful under profile tuning.
        let p = TraceProfile::bu94().with_requests(100_000);
        let t = generate(&p).unwrap();
        let s = t.stats();
        assert_eq!(s.requests, 100_000);
        // Activity is heavily Zipf-skewed (as in real proxy populations),
        // so only the active core of the 591-user population appears.
        assert!(s.unique_clients as u32 >= p.clients / 4);
    }
}
