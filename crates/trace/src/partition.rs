//! Mapping clients onto the caches of a cooperation group.
//!
//! Each proxy cache serves a fixed client population (in the paper's setup,
//! the browsers configured to use that proxy). A [`Partitioner`] decides,
//! per request, which cache acts as the *requester*.

use coopcache_types::{CacheId, Request};

/// Strategy for assigning trace requests to the caches of a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Partitioner {
    /// Each client is pinned to `client_id mod group_size` — the standard
    /// model of browsers statically configured against one proxy, and the
    /// one used for all paper experiments.
    ByClientModulo,
    /// Clients are pinned by a multiplicative hash of their id; like
    /// [`Partitioner::ByClientModulo`] but robust to client-id patterns
    /// (e.g. all even ids on one subnet).
    ByClientHash,
    /// Requests round-robin over caches regardless of client — a worst-case
    /// locality stressor (the same client's re-references land on
    /// different caches).
    RoundRobin,
}

impl Partitioner {
    /// Returns the requester cache for the `seq`-th request of a trace.
    ///
    /// `seq` is the zero-based position of the request in the trace; only
    /// [`Partitioner::RoundRobin`] consumes it.
    ///
    /// # Panics
    ///
    /// Panics if `group_size` is zero.
    #[must_use]
    pub fn assign(self, request: &Request, seq: usize, group_size: usize) -> CacheId {
        assert!(group_size > 0, "group must contain at least one cache");
        let idx = match self {
            Self::ByClientModulo => request.client.as_u32() as usize % group_size,
            Self::ByClientHash => {
                // Fibonacci hashing spreads structured id spaces evenly.
                let h = (u64::from(request.client.as_u32())).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                (h >> 32) as usize % group_size
            }
            Self::RoundRobin => seq % group_size,
        };
        CacheId::new(idx as u16)
    }
}

impl Default for Partitioner {
    /// The paper's client-to-proxy pinning.
    fn default() -> Self {
        Self::ByClientModulo
    }
}

impl std::fmt::Display for Partitioner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::ByClientModulo => "by-client-modulo",
            Self::ByClientHash => "by-client-hash",
            Self::RoundRobin => "round-robin",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopcache_types::{ByteSize, ClientId, DocId, Timestamp};

    fn req(client: u32) -> Request {
        Request::new(
            Timestamp::ZERO,
            ClientId::new(client),
            DocId::new(1),
            ByteSize::from_bytes(1),
        )
    }

    #[test]
    fn modulo_pins_clients() {
        let p = Partitioner::ByClientModulo;
        assert_eq!(p.assign(&req(0), 0, 4), CacheId::new(0));
        assert_eq!(p.assign(&req(5), 99, 4), CacheId::new(1));
        // Same client, different seq: same cache.
        assert_eq!(p.assign(&req(7), 0, 4), p.assign(&req(7), 1000, 4));
    }

    #[test]
    fn hash_pins_clients_and_spreads() {
        let p = Partitioner::ByClientHash;
        // Stability per client.
        assert_eq!(p.assign(&req(42), 0, 8), p.assign(&req(42), 77, 8));
        // Even client ids (a pattern modulo would map onto half the group)
        // still cover every cache under hashing.
        let mut seen = vec![false; 8];
        for c in (0..256u32).step_by(2) {
            seen[p.assign(&req(c), 0, 8).index()] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "hash left a cache unused: {seen:?}"
        );
    }

    #[test]
    fn round_robin_cycles() {
        let p = Partitioner::RoundRobin;
        let r = req(9);
        let ids: Vec<usize> = (0..6).map(|seq| p.assign(&r, seq, 3).index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn single_cache_group_gets_everything() {
        for p in [
            Partitioner::ByClientModulo,
            Partitioner::ByClientHash,
            Partitioner::RoundRobin,
        ] {
            assert_eq!(p.assign(&req(123), 456, 1), CacheId::new(0));
        }
    }

    #[test]
    #[should_panic(expected = "at least one cache")]
    fn zero_group_panics() {
        let _ = Partitioner::default().assign(&req(0), 0, 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Partitioner::ByClientModulo.to_string(), "by-client-modulo");
        assert_eq!(Partitioner::RoundRobin.to_string(), "round-robin");
    }

    #[test]
    fn default_is_modulo() {
        assert_eq!(Partitioner::default(), Partitioner::ByClientModulo);
    }
}
