//! A plain-text trace file format, plus reader and writer.
//!
//! The format is one record per line — `time_ms client_id doc_id size_bytes`
//! — with `#`-prefixed comment lines allowed anywhere. It is deliberately
//! close to the reduced form of classic proxy logs (Squid, BU-94) so real
//! logs can be converted with a one-line awk script.
//!
//! ```text
//! # coopcache trace v1
//! 0 12 4031 3771
//! 512 12 4031 3771
//! 978 3 17 10240
//! ```

use crate::generate::Trace;
use coopcache_types::{ByteSize, ClientId, DocId, Request, Timestamp};
use std::fmt;
use std::io::{self, BufRead, Write};

/// Magic header comment emitted at the top of written traces.
pub const HEADER: &str = "# coopcache trace v1";

/// Error produced when parsing a trace file.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A line that is neither a comment, blank, nor a valid record.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "trace i/o error: {e}"),
            Self::Malformed { line, reason } => {
                write!(f, "malformed trace record at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            Self::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Writes a trace in the v1 text format.
///
/// Remember that `W: Write` can be a `&mut` reference, so a caller keeping
/// ownership of a file or buffer can pass `&mut file`.
///
/// # Errors
///
/// Propagates any I/O error from the writer.
///
/// # Example
///
/// ```
/// use coopcache_trace::{generate, read_trace, write_trace, TraceProfile};
/// let trace = generate(&TraceProfile::small().with_requests(100)).unwrap();
/// let mut buf = Vec::new();
/// write_trace(&mut buf, &trace).unwrap();
/// let back = read_trace(buf.as_slice()).unwrap();
/// assert_eq!(trace, back);
/// ```
pub fn write_trace<W: Write>(mut w: W, trace: &Trace) -> io::Result<()> {
    writeln!(w, "{HEADER}")?;
    writeln!(w, "# records: {}", trace.len())?;
    writeln!(w, "# fields: time_ms client_id doc_id size_bytes")?;
    for r in trace {
        writeln!(
            w,
            "{} {} {} {}",
            r.time.as_millis(),
            r.client.as_u32(),
            r.doc.as_u64(),
            r.size.as_bytes()
        )?;
    }
    w.flush()
}

/// Reads a trace in the v1 text format.
///
/// Comment (`#`) and blank lines are skipped. Records need not be sorted;
/// the returned [`Trace`] is re-sorted chronologically.
///
/// # Errors
///
/// Returns [`ReadTraceError::Io`] on reader failure and
/// [`ReadTraceError::Malformed`] on the first syntactically invalid record.
pub fn read_trace<R: io::Read>(r: R) -> Result<Trace, ReadTraceError> {
    let reader = io::BufReader::new(r);
    let mut requests = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        requests.push(parse_record(trimmed, line_no)?);
    }
    Ok(Trace::from_requests(requests))
}

fn parse_record(line: &str, line_no: usize) -> Result<Request, ReadTraceError> {
    let malformed = |reason: String| ReadTraceError::Malformed {
        line: line_no,
        reason,
    };
    let mut fields = line.split_whitespace();
    let mut next_u64 = |name: &str| -> Result<u64, ReadTraceError> {
        let field = fields
            .next()
            .ok_or_else(|| malformed(format!("missing field `{name}`")))?;
        field
            .parse::<u64>()
            .map_err(|e| malformed(format!("field `{name}` = {field:?}: {e}")))
    };
    let time = next_u64("time_ms")?;
    let client = next_u64("client_id")?;
    let doc = next_u64("doc_id")?;
    let size = next_u64("size_bytes")?;
    if client > u64::from(u32::MAX) {
        return Err(malformed(format!("client_id {client} exceeds u32")));
    }
    if let Some(extra) = fields.next() {
        return Err(malformed(format!("unexpected trailing field {extra:?}")));
    }
    Ok(Request::new(
        Timestamp::from_millis(time),
        ClientId::new(client as u32),
        DocId::new(doc),
        ByteSize::from_bytes(size),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, TraceProfile};

    #[test]
    fn roundtrip_small_trace() {
        let trace = generate(&TraceProfile::small().with_requests(500)).unwrap();
        let mut buf = Vec::new();
        write_trace(&mut buf, &trace).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with(HEADER));
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(trace, back);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "# header\n\n  \n10 1 2 300\n# mid comment\n20 1 3 400\n";
        let t = read_trace(text.as_bytes()).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests()[0].doc, DocId::new(2));
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let text = "30 1 2 300\n10 1 3 400\n20 1 4 100\n";
        let t = read_trace(text.as_bytes()).unwrap();
        let times: Vec<u64> = t.iter().map(|r| r.time.as_millis()).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn missing_field_is_reported_with_line() {
        let err = read_trace("10 1 2\n".as_bytes()).unwrap_err();
        match err {
            ReadTraceError::Malformed { line, reason } => {
                assert_eq!(line, 1);
                assert!(reason.contains("size_bytes"), "{reason}");
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn non_numeric_field_is_reported() {
        let err = read_trace("ten 1 2 3\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn trailing_field_is_rejected() {
        let err = read_trace("1 2 3 4 5\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn oversized_client_rejected() {
        let line = format!("1 {} 3 4\n", u64::from(u32::MAX) + 1);
        assert!(read_trace(line.as_bytes()).is_err());
    }

    #[test]
    fn error_on_later_line_reports_number() {
        let text = "10 1 2 300\nbogus line here x\n";
        let err = read_trace(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let t = read_trace("".as_bytes()).unwrap();
        assert!(t.is_empty());
    }
}
