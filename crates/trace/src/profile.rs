//! Workload profiles: the statistical knobs of a synthetic trace.

use crate::dist::InvalidParamError;
use coopcache_types::{ByteSize, DurationMs};

/// The statistical profile of a synthetic proxy workload.
///
/// [`TraceProfile::bu94`] reproduces the aggregate statistics of the Boston
/// University proxy trace used in the paper (575,775 requests, 46,830
/// unique documents, 591 users over 4,700 sessions, ~105-day span,
/// zero-size records patched to 4 KB); [`TraceProfile::small`] is a scaled
/// profile for tests and examples.
///
/// Build a trace with [`crate::generate`]:
///
/// ```
/// use coopcache_trace::TraceProfile;
/// let trace = coopcache_trace::generate(&TraceProfile::small().with_seed(7)).unwrap();
/// assert_eq!(trace.len(), TraceProfile::small().requests);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Total number of request records to produce.
    pub requests: usize,
    /// Size of the document universe (Zipf population).
    pub unique_docs: u64,
    /// Number of distinct clients.
    pub clients: u32,
    /// Number of browsing sessions spread over the horizon.
    pub sessions: u32,
    /// Length of the trace in simulated time.
    pub horizon: DurationMs,
    /// Zipf skew of document popularity (≈0.7–0.8 for 1990s proxy traces).
    pub zipf_alpha: f64,
    /// Log-space mean of the lognormal size body.
    pub size_mu: f64,
    /// Log-space deviation of the lognormal size body.
    pub size_sigma: f64,
    /// Fraction of documents whose size is drawn from the Pareto tail.
    pub tail_fraction: f64,
    /// Pareto tail scale (minimum tail size, bytes).
    pub tail_x_min: f64,
    /// Pareto tail shape.
    pub tail_alpha: f64,
    /// Fraction of documents recorded with size zero in the original log.
    pub zero_size_fraction: f64,
    /// Replacement size applied to zero-size records (the paper uses the
    /// 4 KB average document size).
    pub zero_size_patch: ByteSize,
    /// Zipf skew of *client activity*: how unevenly the session workload
    /// spreads over clients. Real proxy populations are heavily skewed (a
    /// few users dominate the request stream), which in turn skews the
    /// disk contention of the caches they are pinned to — the asymmetry
    /// the EA scheme exploits. `0.0` = uniform users.
    pub client_activity_skew: f64,
    /// Probability that a request re-references a document from the
    /// client's recent history instead of drawing fresh popularity.
    pub locality_probability: f64,
    /// Per-client history window used by the temporal-locality model.
    pub locality_window: usize,
    /// Probability that a request goes to one of the *currently flashing*
    /// documents — a small set, rotating every [`flash_epoch`], that all
    /// clients share (news-page behaviour). This cross-client temporal
    /// correlation is what makes ad-hoc replication wasteful at small
    /// caches: everyone requests the same documents in the same window.
    ///
    /// [`flash_epoch`]: TraceProfile::flash_epoch
    pub flash_probability: f64,
    /// How many documents flash simultaneously in an epoch.
    pub flash_docs: usize,
    /// How long a flash set stays hot before rotating.
    pub flash_epoch: DurationMs,
    /// Mean think time between requests inside a session.
    pub think_time_mean: DurationMs,
    /// Smallest / largest admissible document size.
    pub size_clamp: (ByteSize, ByteSize),
    /// PRNG seed; equal profiles generate bit-identical traces.
    pub seed: u64,
}

impl TraceProfile {
    /// The Boston-University-1994-like profile used by the paper's
    /// evaluation (see DESIGN.md §4 for the substitution rationale).
    #[must_use]
    pub fn bu94() -> Self {
        Self {
            requests: 575_775,
            // The universe is wider than the paper's 46,830 unique
            // documents because a Zipf(1.05) stream of 575,775 draws only
            // touches a fraction of its population: 300,000 candidates
            // yield a REALIZED unique count of ~47k, matching the BU-94
            // log's 46,830.
            unique_docs: 300_000,
            clients: 591,
            sessions: 4_700,
            horizon: DurationMs::from_days(105),
            zipf_alpha: 1.05,
            size_mu: 7.6, // median ≈ 2 KB, mean ≈ 4 KB (the BU average)
            size_sigma: 1.1,
            tail_fraction: 0.01,
            tail_x_min: 20_000.0,
            tail_alpha: 1.3,
            zero_size_fraction: 0.04,
            zero_size_patch: ByteSize::from_kb(4),
            client_activity_skew: 1.6,
            locality_probability: 0.45,
            locality_window: 32,
            flash_probability: 0.30,
            flash_docs: 16,
            flash_epoch: DurationMs::from_secs(6 * 60 * 60),
            think_time_mean: DurationMs::from_secs(10),
            size_clamp: (ByteSize::from_bytes(100), ByteSize::from_mb(10)),
            seed: 0x1CDC_5200_2EA0_0001,
        }
    }

    /// A scaled-down profile (20,000 requests over 2,000 documents) for
    /// unit tests, doc examples and quick demos.
    #[must_use]
    pub fn small() -> Self {
        Self {
            requests: 20_000,
            unique_docs: 2_000,
            clients: 48,
            sessions: 200,
            horizon: DurationMs::from_days(7),
            ..Self::bu94()
        }
    }

    /// A medium profile (~120k requests) used by the faster experiment
    /// sweeps (group-size and ablation benches).
    #[must_use]
    pub fn medium() -> Self {
        Self {
            requests: 120_000,
            unique_docs: 12_000,
            clients: 200,
            sessions: 1_000,
            horizon: DurationMs::from_days(30),
            ..Self::bu94()
        }
    }

    /// Replaces the seed (builder-style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the request count (builder-style).
    #[must_use]
    pub fn with_requests(mut self, requests: usize) -> Self {
        self.requests = requests;
        self
    }

    /// Replaces the document universe size (builder-style).
    #[must_use]
    pub fn with_unique_docs(mut self, docs: u64) -> Self {
        self.unique_docs = docs;
        self
    }

    /// Replaces the Zipf skew (builder-style).
    #[must_use]
    pub fn with_zipf_alpha(mut self, alpha: f64) -> Self {
        self.zipf_alpha = alpha;
        self
    }

    /// Replaces the client population (builder-style).
    #[must_use]
    pub fn with_clients(mut self, clients: u32) -> Self {
        self.clients = clients;
        self
    }

    /// Validates the profile's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamError`] when any count is zero, a probability
    /// is outside `[0, 1]`, or a distribution parameter is out of domain.
    pub fn validate(&self) -> Result<(), InvalidParamError> {
        fn bad(what: &'static str) -> InvalidParamError {
            InvalidParamError::new(what)
        }
        if self.requests == 0 {
            return Err(bad("profile requires at least one request"));
        }
        if self.unique_docs == 0 {
            return Err(bad("profile requires at least one document"));
        }
        if self.clients == 0 {
            return Err(bad("profile requires at least one client"));
        }
        if self.sessions == 0 {
            return Err(bad("profile requires at least one session"));
        }
        if self.horizon == DurationMs::ZERO {
            return Err(bad("profile horizon must be positive"));
        }
        for (p, what) in [
            (self.zipf_alpha, "zipf alpha must be in [0, inf)"),
            (
                self.client_activity_skew,
                "client activity skew must be in [0, inf)",
            ),
            (self.tail_fraction, "tail fraction must be in [0, 1]"),
            (
                self.zero_size_fraction,
                "zero-size fraction must be in [0, 1]",
            ),
            (
                self.locality_probability,
                "locality probability must be in [0, 1]",
            ),
            (
                self.flash_probability,
                "flash probability must be in [0, 1]",
            ),
        ] {
            if !p.is_finite() || p < 0.0 {
                return Err(bad(what));
            }
        }
        if self.tail_fraction > 1.0
            || self.zero_size_fraction > 1.0
            || self.locality_probability > 1.0
            || self.flash_probability > 1.0
        {
            return Err(bad("probabilities must not exceed 1"));
        }
        if self.flash_probability > 0.0
            && (self.flash_docs == 0 || self.flash_epoch == DurationMs::ZERO)
        {
            return Err(bad(
                "flash traffic requires flash_docs > 0 and a positive epoch",
            ));
        }
        if !self.size_mu.is_finite() || !self.size_sigma.is_finite() || self.size_sigma < 0.0 {
            return Err(bad("lognormal size params must be finite with sigma >= 0"));
        }
        if !self.tail_x_min.is_finite() || !self.tail_alpha.is_finite() {
            return Err(bad("pareto tail params must be finite"));
        }
        if self.size_clamp.0 > self.size_clamp.1 {
            return Err(bad("size clamp range is inverted"));
        }
        if self.size_clamp.0.is_zero() {
            return Err(bad("minimum document size must be positive"));
        }
        Ok(())
    }
}

impl Default for TraceProfile {
    /// The default profile is the paper's BU-94-like workload.
    fn default() -> Self {
        Self::bu94()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bu94_matches_published_statistics() {
        let p = TraceProfile::bu94();
        assert_eq!(p.requests, 575_775);
        // Universe sized so the REALIZED unique count matches the BU-94
        // log's 46,830 (see the field comment).
        assert_eq!(p.unique_docs, 300_000);
        assert_eq!(p.clients, 591);
        assert_eq!(p.sessions, 4_700);
        assert_eq!(p.zero_size_patch, ByteSize::from_kb(4));
        assert!(p.validate().is_ok());
    }

    #[test]
    fn small_and_medium_validate() {
        assert!(TraceProfile::small().validate().is_ok());
        assert!(TraceProfile::medium().validate().is_ok());
    }

    #[test]
    fn builder_methods_replace_fields() {
        let p = TraceProfile::small()
            .with_seed(9)
            .with_requests(5)
            .with_unique_docs(3)
            .with_clients(2)
            .with_zipf_alpha(0.5);
        assert_eq!(p.seed, 9);
        assert_eq!(p.requests, 5);
        assert_eq!(p.unique_docs, 3);
        assert_eq!(p.clients, 2);
        assert!((p.zipf_alpha - 0.5).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_degenerate_profiles() {
        assert!(TraceProfile::small().with_requests(0).validate().is_err());
        assert!(TraceProfile::small()
            .with_unique_docs(0)
            .validate()
            .is_err());
        assert!(TraceProfile::small().with_clients(0).validate().is_err());
        let mut p = TraceProfile::small();
        p.sessions = 0;
        assert!(p.validate().is_err());
        let mut p = TraceProfile::small();
        p.horizon = DurationMs::ZERO;
        assert!(p.validate().is_err());
        let mut p = TraceProfile::small();
        p.locality_probability = 1.5;
        assert!(p.validate().is_err());
        let mut p = TraceProfile::small();
        p.tail_fraction = -0.1;
        assert!(p.validate().is_err());
        let mut p = TraceProfile::small();
        p.size_clamp = (ByteSize::from_mb(1), ByteSize::from_kb(1));
        assert!(p.validate().is_err());
        let mut p = TraceProfile::small();
        p.size_clamp = (ByteSize::ZERO, ByteSize::from_kb(1));
        assert!(p.validate().is_err());
    }

    #[test]
    fn default_is_bu94() {
        assert_eq!(TraceProfile::default(), TraceProfile::bu94());
    }
}
