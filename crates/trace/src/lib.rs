#![forbid(unsafe_code)]
//! Synthetic web-proxy workload traces for cooperative-caching experiments.
//!
//! The paper's evaluation replays the Boston University 1994–95 proxy trace,
//! which cannot be redistributed. This crate synthesizes statistically
//! matching workloads instead (see `DESIGN.md` §4 for the substitution
//! argument): Zipf-skewed document popularity, lognormal-body /
//! Pareto-tail document sizes, a session-structured client population, and
//! per-client temporal locality — all driven by a seeded, in-tree PRNG so
//! every trace is bit-for-bit reproducible.
//!
//! # Quick start
//!
//! ```
//! use coopcache_trace::{generate, Partitioner, TraceProfile};
//!
//! // A small deterministic workload.
//! let trace = generate(&TraceProfile::small().with_seed(1)).unwrap();
//! println!("{} requests, {} unique docs",
//!          trace.len(), trace.stats().unique_docs);
//!
//! // Route each request to its proxy in a 4-cache group.
//! let part = Partitioner::default();
//! let first_cache = part.assign(&trace.requests()[0], 0, 4);
//! assert!(first_cache.index() < 4);
//! ```
//!
//! The full-scale profile used by the experiment harness is
//! [`TraceProfile::bu94`]. Traces round-trip through a plain-text file
//! format via [`write_trace`] / [`read_trace`].

mod adapters;
mod dist;
mod format;
mod generate;
mod partition;
mod profile;
mod rng;

pub use adapters::{parse_log, LogFormat, ParseLogError, ParsedLog};
pub use dist::{Distribution, Exponential, InvalidParamError, LogNormal, Pareto, Zipf};
pub use format::{read_trace, write_trace, ReadTraceError, HEADER};
pub use generate::{generate, Trace, TraceStats};
pub use partition::Partitioner;
pub use profile::TraceProfile;
pub use rng::Rng;
