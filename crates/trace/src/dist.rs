//! Statistical distributions used by the workload generator.
//!
//! Web-proxy request streams of the mid-1990s are well described by three
//! distributions, all implemented here from first principles:
//!
//! * [`Zipf`] — document popularity (`P(rank k) ∝ 1/k^α`, α ≈ 0.7–0.8 for
//!   proxy traces of the BU-94 era);
//! * [`LogNormal`] — the body of the document-size distribution;
//! * [`Pareto`] — the heavy tail of the document-size distribution;
//! * [`Exponential`] — inter-arrival times within a browsing session.

use crate::Rng;

/// A distribution that can produce a sample from a [`Rng`].
pub trait Distribution {
    /// The sample type.
    type Output;
    /// Draws one sample.
    fn sample(&self, rng: &mut Rng) -> Self::Output;
}

/// Zipf(α) over ranks `1..=n`, sampled in O(log n) by binary search over a
/// precomputed CDF table.
///
/// The table costs O(n) memory, which is perfectly fine for the ≤ 10⁶
/// document universes used here and gives *exact* Zipf probabilities
/// (rejection-free, no approximation).
///
/// # Example
///
/// ```
/// use coopcache_trace::{Distribution, Rng, Zipf};
/// let zipf = Zipf::new(1000, 0.75).unwrap();
/// let mut rng = Rng::seed_from(1);
/// let rank = zipf.sample(&mut rng);
/// assert!((1..=1000).contains(&rank));
/// ```
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    alpha: f64,
}

/// Error returned when constructing a distribution from invalid parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidParamError {
    what: &'static str,
}

impl std::fmt::Display for InvalidParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.what)
    }
}

impl std::error::Error for InvalidParamError {}

impl InvalidParamError {
    /// Creates an error with a static description of the violated domain.
    pub(crate) fn new(what: &'static str) -> Self {
        Self { what }
    }
}

impl Zipf {
    /// Builds a Zipf distribution over `1..=n` with exponent `alpha ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamError`] if `n` is zero or `alpha` is negative
    /// or non-finite.
    pub fn new(n: u64, alpha: f64) -> Result<Self, InvalidParamError> {
        if n == 0 {
            return Err(InvalidParamError {
                what: "zipf population must be positive",
            });
        }
        if !alpha.is_finite() || alpha < 0.0 {
            return Err(InvalidParamError {
                what: "zipf alpha must be finite and non-negative",
            });
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(Self { cdf, alpha })
    }

    /// The population size `n`.
    #[must_use]
    pub fn population(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// The skew exponent α.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The probability of rank `k` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero or exceeds the population.
    #[must_use]
    pub fn probability(&self, k: u64) -> f64 {
        assert!(k >= 1 && k <= self.population(), "rank out of range");
        let i = (k - 1) as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

impl Distribution for Zipf {
    type Output = u64;

    /// Samples a rank in `1..=n` (rank 1 is the most popular).
    fn sample(&self, rng: &mut Rng) -> u64 {
        let u = rng.next_f64();
        // partition_point returns the count of entries < u, i.e. the index
        // of the first cdf entry >= u, i.e. the 0-based rank.
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as u64
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
///
/// Used for the body of web document sizes; classic fits for 1990s proxy
/// traces give a median of a few KB.
#[derive(Debug, Clone, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with the given log-space mean and deviation.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamError`] if `sigma` is negative or either
    /// parameter is non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, InvalidParamError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma < 0.0 {
            return Err(InvalidParamError {
                what: "lognormal requires finite mu and sigma >= 0",
            });
        }
        Ok(Self { mu, sigma })
    }

    /// The median of the distribution, `exp(mu)`.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }

    /// Draws a standard normal via Box–Muller.
    fn standard_normal(rng: &mut Rng) -> f64 {
        let u1 = rng.next_f64_open();
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl Distribution for LogNormal {
    type Output = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * Self::standard_normal(rng)).exp()
    }
}

/// Pareto distribution with scale `x_min` and shape `alpha`.
///
/// Used for the heavy tail of web document sizes (shape ≈ 1.1–1.5 in the
/// era's measurements, giving the occasional multi-megabyte download).
#[derive(Debug, Clone, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamError`] unless `x_min > 0` and `alpha > 0`.
    pub fn new(x_min: f64, alpha: f64) -> Result<Self, InvalidParamError> {
        // NaN parameters fail the `is_finite` checks.
        if x_min <= 0.0 || alpha <= 0.0 || !x_min.is_finite() || !alpha.is_finite() {
            return Err(InvalidParamError {
                what: "pareto requires x_min > 0 and alpha > 0",
            });
        }
        Ok(Self { x_min, alpha })
    }

    /// The scale parameter (minimum value).
    #[must_use]
    pub fn x_min(&self) -> f64 {
        self.x_min
    }
}

impl Distribution for Pareto {
    type Output = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        // Inverse-CDF: x = x_min / U^(1/alpha), U in (0, 1].
        self.x_min / rng.next_f64_open().powf(1.0 / self.alpha)
    }
}

/// Exponential distribution with the given mean.
///
/// Used for inter-arrival times inside a browsing session (Poisson process).
#[derive(Debug, Clone, PartialEq)]
pub struct Exponential {
    mean: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidParamError`] unless `mean > 0` and finite.
    pub fn new(mean: f64) -> Result<Self, InvalidParamError> {
        // A NaN mean fails the `is_finite` check.
        if mean <= 0.0 || !mean.is_finite() {
            return Err(InvalidParamError {
                what: "exponential mean must be positive and finite",
            });
        }
        Ok(Self { mean })
    }

    /// The mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl Distribution for Exponential {
    type Output = f64;

    fn sample(&self, rng: &mut Rng) -> f64 {
        -self.mean * rng.next_f64_open().ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_rejects_bad_params() {
        assert!(Zipf::new(0, 0.7).is_err());
        assert!(Zipf::new(10, -0.1).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(10, 0.0).is_ok());
    }

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let z = Zipf::new(100, 0.75).unwrap();
        let total: f64 = (1..=100).map(|k| z.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank_one_is_most_popular() {
        let z = Zipf::new(1000, 0.8).unwrap();
        let mut rng = Rng::seed_from(21);
        let n = 200_000;
        let mut count_rank1 = 0u32;
        let mut count_rank500 = 0u32;
        for _ in 0..n {
            match z.sample(&mut rng) {
                1 => count_rank1 += 1,
                500 => count_rank500 += 1,
                _ => {}
            }
        }
        assert!(count_rank1 > 20 * count_rank500.max(1));
        // Empirical frequency of rank 1 tracks the analytic probability.
        let expected = z.probability(1) * n as f64;
        let got = f64::from(count_rank1);
        assert!(
            (got - expected).abs() / expected < 0.05,
            "rank-1 freq {got} vs expected {expected}"
        );
    }

    #[test]
    fn zipf_alpha_zero_is_uniform() {
        let z = Zipf::new(4, 0.0).unwrap();
        for k in 1..=4 {
            assert!((z.probability(k) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_samples_cover_full_range() {
        let z = Zipf::new(5, 0.1).unwrap();
        let mut rng = Rng::seed_from(22);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[(z.sample(&mut rng) - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lognormal_median_matches() {
        let ln = LogNormal::new(8.0, 1.0).unwrap();
        let mut rng = Rng::seed_from(23);
        let mut samples: Vec<f64> = (0..50_001).map(|_| ln.sample(&mut rng)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[25_000];
        let expected = ln.median();
        assert!(
            (median - expected).abs() / expected < 0.05,
            "median {median} vs {expected}"
        );
    }

    #[test]
    fn lognormal_rejects_bad_params() {
        assert!(LogNormal::new(f64::INFINITY, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn pareto_respects_minimum() {
        let p = Pareto::new(1000.0, 1.2).unwrap();
        let mut rng = Rng::seed_from(24);
        for _ in 0..10_000 {
            assert!(p.sample(&mut rng) >= p.x_min());
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        let p = Pareto::new(1.0, 1.1).unwrap();
        let mut rng = Rng::seed_from(25);
        let big = (0..100_000)
            .map(|_| p.sample(&mut rng))
            .filter(|&x| x > 100.0)
            .count();
        // P(X > 100) = 100^-1.1 ≈ 0.0063 => ~630 of 100k.
        assert!((300..1200).contains(&big), "tail count {big}");
    }

    #[test]
    fn pareto_rejects_bad_params() {
        assert!(Pareto::new(0.0, 1.0).is_err());
        assert!(Pareto::new(1.0, 0.0).is_err());
        assert!(Pareto::new(-1.0, 1.0).is_err());
    }

    #[test]
    fn exponential_mean_converges() {
        let e = Exponential::new(250.0).unwrap();
        let mut rng = Rng::seed_from(26);
        let n = 100_000;
        let mean = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 250.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn exponential_rejects_bad_params() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-5.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
    }

    #[test]
    fn invalid_param_error_displays() {
        let err = Zipf::new(0, 0.7).unwrap_err();
        assert!(err.to_string().contains("zipf"));
    }
}
