//! The paper's latency estimator (eq. 6).

use crate::counters::GroupMetrics;
use coopcache_types::DurationMs;

/// The three measured latency classes of §4.2 and the eq. 6 estimator.
///
/// The paper measured a local hit at 146 ms, a remote hit at 342 ms and a
/// miss (origin fetch of a 4 KB document, averaged over live web sites) at
/// 2784 ms, then estimated
///
/// ```text
///                LHR·LHL + RHR·RHL + MR·ML
/// AvgLatency = ─────────────────────────────
///                     LHR + RHR + MR
/// ```
///
/// # Example
///
/// ```
/// use coopcache_metrics::{GroupMetrics, LatencyModel};
/// use coopcache_proxy::RequestOutcome;
/// use coopcache_types::ByteSize;
///
/// let mut m = GroupMetrics::default();
/// m.record(RequestOutcome::LocalHit, ByteSize::from_kb(4));
/// m.record(
///     RequestOutcome::Miss { stored_locally: true, stored_at_ancestor: false },
///     ByteSize::from_kb(4),
/// );
/// let model = LatencyModel::paper_2002();
/// // (146 + 2784) / 2
/// assert!((model.average_latency_ms(&m) - 1465.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyModel {
    /// Latency of a local hit (LHL).
    pub local_hit: DurationMs,
    /// Latency of a remote hit (RHL).
    pub remote_hit: DurationMs,
    /// Latency of a miss (ML).
    pub miss: DurationMs,
}

impl LatencyModel {
    /// The constants measured by the paper: LHL = 146 ms, RHL = 342 ms,
    /// ML = 2784 ms.
    #[must_use]
    pub const fn paper_2002() -> Self {
        Self {
            local_hit: DurationMs::from_millis(146),
            remote_hit: DurationMs::from_millis(342),
            miss: DurationMs::from_millis(2784),
        }
    }

    /// A model with the same LHL/ML but a scaled remote-hit latency —
    /// used by the ABL-L ablation to study how the EA scheme's benefit
    /// depends on the inter-proxy-communication to server-fetch ratio
    /// (the open question the paper poses in §1).
    ///
    /// `ratio` is RHL/ML; `ratio = 1.0` makes a remote hit as costly as a
    /// miss, at which point cooperation stops paying.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= ratio <= 1.0` and finite.
    #[must_use]
    pub fn with_remote_to_miss_ratio(ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && (0.0..=1.0).contains(&ratio),
            "RHL/ML ratio must be within [0, 1]"
        );
        let base = Self::paper_2002();
        Self {
            remote_hit: DurationMs::from_millis(
                (base.miss.as_millis() as f64 * ratio).round() as u64
            ),
            ..base
        }
    }

    /// The paper's eq. 6: rate-weighted average latency, in milliseconds.
    ///
    /// Returns 0 for an empty metric set.
    #[must_use]
    pub fn average_latency_ms(&self, m: &GroupMetrics) -> f64 {
        if m.requests == 0 {
            return 0.0;
        }
        let lhr = m.local_hit_rate();
        let rhr = m.remote_hit_rate();
        let mr = m.miss_rate();
        // The denominator (LHR + RHR + MR) is 1 by construction, but eq. 6
        // writes it out, so keep the faithful form.
        (lhr * self.local_hit.as_millis() as f64
            + rhr * self.remote_hit.as_millis() as f64
            + mr * self.miss.as_millis() as f64)
            / (lhr + rhr + mr)
    }
}

impl Default for LatencyModel {
    /// The paper's measured constants.
    fn default() -> Self {
        Self::paper_2002()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopcache_proxy::RequestOutcome;
    use coopcache_types::{ByteSize, CacheId};

    const MISS: RequestOutcome = RequestOutcome::Miss {
        stored_locally: true,
        stored_at_ancestor: false,
    };

    fn remote() -> RequestOutcome {
        RequestOutcome::RemoteHit {
            responder: CacheId::new(1),
            stored_locally: true,
            promoted_at_responder: true,
        }
    }

    #[test]
    fn paper_constants() {
        let m = LatencyModel::paper_2002();
        assert_eq!(m.local_hit.as_millis(), 146);
        assert_eq!(m.remote_hit.as_millis(), 342);
        assert_eq!(m.miss.as_millis(), 2784);
        assert_eq!(LatencyModel::default(), m);
    }

    #[test]
    fn pure_classes_give_their_constant() {
        let model = LatencyModel::paper_2002();
        let mut local = GroupMetrics::default();
        local.record(RequestOutcome::LocalHit, ByteSize::from_kb(4));
        assert!((model.average_latency_ms(&local) - 146.0).abs() < 1e-9);
        let mut miss = GroupMetrics::default();
        miss.record(MISS, ByteSize::from_kb(4));
        assert!((model.average_latency_ms(&miss) - 2784.0).abs() < 1e-9);
        let mut rem = GroupMetrics::default();
        rem.record(remote(), ByteSize::from_kb(4));
        assert!((model.average_latency_ms(&rem) - 342.0).abs() < 1e-9);
    }

    #[test]
    fn mixture_is_rate_weighted() {
        let model = LatencyModel::paper_2002();
        let mut m = GroupMetrics::default();
        for _ in 0..6 {
            m.record(RequestOutcome::LocalHit, ByteSize::from_kb(1));
        }
        for _ in 0..3 {
            m.record(remote(), ByteSize::from_kb(1));
        }
        m.record(MISS, ByteSize::from_kb(1));
        let expected = 0.6 * 146.0 + 0.3 * 342.0 + 0.1 * 2784.0;
        assert!((model.average_latency_ms(&m) - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_metrics_give_zero() {
        assert_eq!(
            LatencyModel::paper_2002().average_latency_ms(&GroupMetrics::default()),
            0.0
        );
    }

    #[test]
    fn ratio_model() {
        let m = LatencyModel::with_remote_to_miss_ratio(0.5);
        assert_eq!(m.remote_hit.as_millis(), 1392);
        assert_eq!(m.miss.as_millis(), 2784);
        let paper_ratio = 342.0 / 2784.0;
        let p = LatencyModel::with_remote_to_miss_ratio(paper_ratio);
        assert_eq!(p.remote_hit.as_millis(), 342);
    }

    #[test]
    #[should_panic(expected = "ratio must be within")]
    fn bad_ratio_panics() {
        let _ = LatencyModel::with_remote_to_miss_ratio(1.5);
    }
}
