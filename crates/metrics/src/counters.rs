//! Group-wide request counters and the paper's rate metrics.

use coopcache_proxy::RequestOutcome;
use coopcache_types::ByteSize;

/// Accumulates the outcome of every request served by a cache group and
/// derives the paper's evaluation metrics (§4):
///
/// * **cumulative hit rate** — (local + remote hits) / requests;
/// * **cumulative byte hit rate** — bytes served from the group / bytes
///   requested;
/// * **local / remote / miss rates** — the split behind Table 2.
///
/// # Example
///
/// ```
/// use coopcache_metrics::GroupMetrics;
/// use coopcache_proxy::RequestOutcome;
/// use coopcache_types::ByteSize;
///
/// let mut m = GroupMetrics::default();
/// m.record(RequestOutcome::LocalHit, ByteSize::from_kb(4));
/// m.record(
///     RequestOutcome::Miss { stored_locally: true, stored_at_ancestor: false },
///     ByteSize::from_kb(4),
/// );
/// assert!((m.hit_rate() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupMetrics {
    /// Total requests recorded.
    pub requests: u64,
    /// Requests served by the client's own cache.
    pub local_hits: u64,
    /// Requests served by another cache in the group.
    pub remote_hits: u64,
    /// Requests that went to the origin server.
    pub misses: u64,
    /// Total bytes requested.
    pub bytes_requested: ByteSize,
    /// Bytes served from local hits.
    pub bytes_local: ByteSize,
    /// Bytes served from remote hits.
    pub bytes_remote: ByteSize,
    /// Remote hits where the EA rule skipped the local store
    /// (always zero under ad-hoc).
    pub stores_skipped: u64,
    /// Remote hits where the EA rule skipped the responder promotion
    /// (always zero under ad-hoc).
    pub promotions_skipped: u64,
}

impl GroupMetrics {
    /// Records one served request.
    pub fn record(&mut self, outcome: RequestOutcome, size: ByteSize) {
        self.requests += 1;
        self.bytes_requested += size;
        match outcome {
            RequestOutcome::LocalHit => {
                self.local_hits += 1;
                self.bytes_local += size;
            }
            RequestOutcome::RemoteHit {
                stored_locally,
                promoted_at_responder,
                ..
            } => {
                self.remote_hits += 1;
                self.bytes_remote += size;
                if !stored_locally {
                    self.stores_skipped += 1;
                }
                if !promoted_at_responder {
                    self.promotions_skipped += 1;
                }
            }
            RequestOutcome::Miss { .. } => {
                self.misses += 1;
            }
        }
    }

    /// Merges another counter set into this one (used to combine
    /// per-thread or per-phase tallies).
    pub fn merge(&mut self, other: &GroupMetrics) {
        self.requests += other.requests;
        self.local_hits += other.local_hits;
        self.remote_hits += other.remote_hits;
        self.misses += other.misses;
        self.bytes_requested += other.bytes_requested;
        self.bytes_local += other.bytes_local;
        self.bytes_remote += other.bytes_remote;
        self.stores_skipped += other.stores_skipped;
        self.promotions_skipped += other.promotions_skipped;
    }

    /// Total hits (local + remote).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.local_hits + self.remote_hits
    }

    fn rate(num: u64, den: u64) -> f64 {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    }

    /// Cumulative document hit rate (Figure 1's y-axis).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        Self::rate(self.hits(), self.requests)
    }

    /// Cumulative byte hit rate (Figure 2's y-axis).
    #[must_use]
    pub fn byte_hit_rate(&self) -> f64 {
        let served = self.bytes_local + self.bytes_remote;
        if self.bytes_requested.is_zero() {
            0.0
        } else {
            served.as_bytes() as f64 / self.bytes_requested.as_bytes() as f64
        }
    }

    /// Local hit rate (Table 2, "Local Hits").
    #[must_use]
    pub fn local_hit_rate(&self) -> f64 {
        Self::rate(self.local_hits, self.requests)
    }

    /// Remote hit rate (Table 2, "Remote Hits").
    #[must_use]
    pub fn remote_hit_rate(&self) -> f64 {
        Self::rate(self.remote_hits, self.requests)
    }

    /// Miss rate.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        Self::rate(self.misses, self.requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopcache_types::CacheId;

    fn kb(n: u64) -> ByteSize {
        ByteSize::from_kb(n)
    }

    fn remote(stored: bool, promoted: bool) -> RequestOutcome {
        RequestOutcome::RemoteHit {
            responder: CacheId::new(1),
            stored_locally: stored,
            promoted_at_responder: promoted,
        }
    }

    const MISS: RequestOutcome = RequestOutcome::Miss {
        stored_locally: true,
        stored_at_ancestor: false,
    };

    #[test]
    fn empty_metrics_are_zero() {
        let m = GroupMetrics::default();
        assert_eq!(m.hit_rate(), 0.0);
        assert_eq!(m.byte_hit_rate(), 0.0);
        assert_eq!(m.miss_rate(), 0.0);
    }

    #[test]
    fn rates_partition_to_one() {
        let mut m = GroupMetrics::default();
        m.record(RequestOutcome::LocalHit, kb(1));
        m.record(remote(true, true), kb(2));
        m.record(MISS, kb(3));
        m.record(MISS, kb(4));
        assert_eq!(m.requests, 4);
        let total = m.local_hit_rate() + m.remote_hit_rate() + m.miss_rate();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn byte_hit_rate_weighs_by_size() {
        let mut m = GroupMetrics::default();
        m.record(RequestOutcome::LocalHit, kb(9)); // 9 KB served
        m.record(MISS, kb(1)); // 1 KB missed
        assert!((m.byte_hit_rate() - 0.9).abs() < 1e-12);
        // Document hit rate ignores size.
        assert!((m.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ea_skip_counters() {
        let mut m = GroupMetrics::default();
        m.record(remote(false, true), kb(1));
        m.record(remote(true, false), kb(1));
        m.record(remote(true, true), kb(1));
        assert_eq!(m.stores_skipped, 1);
        assert_eq!(m.promotions_skipped, 1);
        assert_eq!(m.remote_hits, 3);
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = GroupMetrics::default();
        a.record(RequestOutcome::LocalHit, kb(1));
        let mut b = GroupMetrics::default();
        b.record(MISS, kb(2));
        b.record(remote(false, false), kb(3));
        a.merge(&b);
        assert_eq!(a.requests, 3);
        assert_eq!(a.local_hits, 1);
        assert_eq!(a.remote_hits, 1);
        assert_eq!(a.misses, 1);
        assert_eq!(a.bytes_requested, kb(6));
        assert_eq!(a.stores_skipped, 1);
    }
}
