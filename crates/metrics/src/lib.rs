#![forbid(unsafe_code)]
//! Evaluation metrics for cooperative caching experiments.
//!
//! Implements exactly the measurement apparatus of the paper's §4:
//!
//! * [`GroupMetrics`] — cumulative hit rate, cumulative byte hit rate and
//!   the local/remote/miss split of Table 2, plus the EA scheme's
//!   skipped-store and skipped-promotion counters;
//! * [`LatencyModel`] — the measured latency constants (146 / 342 /
//!   2784 ms) and the eq. 6 average-latency estimator;
//! * [`Table`] with [`pct`] / [`secs`] — diff-friendly plain-text and CSV
//!   rendering used by every experiment binary;
//! * the [`obs`] observability layer (re-exported from `coopcache-obs`):
//!   structured [`Event`]s, pluggable [`EventSink`]s and the log-bucketed
//!   [`Histogram`].
//!
//! # Example
//!
//! ```
//! use coopcache_metrics::{GroupMetrics, LatencyModel, Table, pct};
//! use coopcache_proxy::RequestOutcome;
//! use coopcache_types::ByteSize;
//!
//! let mut m = GroupMetrics::default();
//! m.record(RequestOutcome::LocalHit, ByteSize::from_kb(4));
//! let latency = LatencyModel::paper_2002().average_latency_ms(&m);
//!
//! let mut table = Table::new(vec!["metric", "value"]);
//! table.row(vec!["hit rate %".into(), pct(m.hit_rate())]);
//! table.row(vec!["latency ms".into(), format!("{latency:.0}")]);
//! assert!(table.to_string().contains("100.00"));
//! ```

mod counters;
mod latency;
mod report;

pub use counters::GroupMetrics;
pub use latency::LatencyModel;
pub use report::{pct, secs, Table};

/// The observability layer, re-exported wholesale from `coopcache-obs`.
pub use coopcache_obs as obs;
pub use coopcache_obs::{
    Event, EventKind, EventSink, Histogram, HistogramSink, HistogramSnapshot, JsonWriter,
    JsonlSink, NullSink, RingBufferSink, SinkHandle,
};
