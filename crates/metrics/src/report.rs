//! Plain-text and CSV report tables for the experiment harness.

use std::fmt;
use std::io::{self, Write};

/// A simple column-aligned table: the experiment binaries use it to print
/// each of the paper's tables and figure series in a diff-friendly form.
///
/// # Example
///
/// ```
/// use coopcache_metrics::Table;
///
/// let mut t = Table::new(vec!["size", "ad-hoc", "ea"]);
/// t.row(vec!["100KB".into(), "0.31".into(), "0.36".into()]);
/// let text = t.to_string();
/// assert!(text.contains("100KB"));
/// assert!(text.lines().count() >= 3); // header, rule, one row
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "a table needs at least one column");
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != column count {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// The column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows, in insertion order.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Writes the table as CSV (RFC-4180-style quoting for cells that
    /// contain commas, quotes or newlines).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, mut w: W) -> io::Result<()> {
        fn quote(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        writeln!(
            w,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        )?;
        for row in &self.rows {
            writeln!(
                w,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            )?;
        }
        Ok(())
    }

    /// Renders the table as one compact JSON object:
    /// `{"headers":[...],"rows":[[...],...]}` — cells stay strings, so
    /// the encoding is lossless and byte-stable.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut w = coopcache_obs::JsonWriter::new();
        w.begin_object();
        w.key("headers");
        w.begin_array();
        for h in &self.headers {
            w.string(h);
        }
        w.end_array();
        w.key("rows");
        w.begin_array();
        for row in &self.rows {
            w.begin_array();
            for cell in row {
                w.string(cell);
            }
            w.end_array();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a rate as a percentage with two decimals (`0.3142` → `31.42`),
/// the precision the paper's tables use.
#[must_use]
pub fn pct(rate: f64) -> String {
    format!("{:.2}", rate * 100.0)
}

/// Formats a millisecond quantity in seconds with two decimals, as in the
/// paper's Table 1.
#[must_use]
pub fn secs(ms: f64) -> String {
    format!("{:.2}", ms / 1_000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(vec!["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t
    }

    #[test]
    fn display_aligns_columns() {
        let text = sample().to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "  a  bb");
        assert_eq!(lines[1], "---  --");
        assert_eq!(lines[2], "  1   2");
        assert_eq!(lines[3], "333   4");
    }

    #[test]
    fn csv_output() {
        let mut buf = Vec::new();
        sample().write_csv(&mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "a,bb\n1,2\n333,4\n");
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["x"]);
        t.row(vec!["has,comma".into()]);
        t.row(vec!["has\"quote".into()]);
        let mut buf = Vec::new();
        t.write_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"has,comma\""));
        assert!(text.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_headers_panic() {
        let _ = Table::new(Vec::<String>::new());
    }

    #[test]
    fn len_and_is_empty() {
        assert!(Table::new(vec!["a"]).is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    fn accessors_expose_cells() {
        let t = sample();
        assert_eq!(t.headers(), ["a", "bb"]);
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[1][0], "333");
    }

    #[test]
    fn json_output() {
        assert_eq!(
            sample().to_json(),
            r#"{"headers":["a","bb"],"rows":[["1","2"],["333","4"]]}"#
        );
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.314), "31.40");
        assert_eq!(pct(0.0), "0.00");
        assert_eq!(secs(2784.0), "2.78");
        assert_eq!(secs(1_500_000.0), "1500.00");
    }
}
