//! Concurrency soundness rules (R7–R11).
//!
//! These rules reason about *guard liveness*: where a `MutexGuard`
//! obtained through this workspace's locking idioms (`lock(&mutex)` /
//! `lock_tap(&tap)` helpers, or a direct `receiver.lock()` call) is
//! still alive. The analysis is textual, like every other rule here,
//! but models the Rust drop rules that matter in practice:
//!
//! * a `let g = lock(..);` binding (optionally through poison-recovery
//!   adapters such as `.unwrap_or_else(..)`, or a `let g = match
//!   x.lock() {..}` recovery match) lives to the end of its enclosing
//!   block, or to an explicit `drop(g)`;
//! * a temporary in a plain statement lives to the statement's `;`;
//! * a temporary in an `if let` / `while let` / `match` scrutinee or a
//!   `for` iterator lives to the end of the whole construct
//!   (temporary-lifetime extension — the subtle case);
//! * a temporary in a plain `if` / `while` condition is dropped before
//!   the body runs.
//!
//! `stdout()`/`stderr()`/`stdin()` re-entrant handles also have a
//! `.lock()` method; receivers with those names are not mutexes and are
//! ignored.
//!
//! | rule            | what it catches |
//! |-----------------|-----------------|
//! | `lock-blocking` | a blocking call (`join`, socket/file I/O, `sleep`, channel `recv`, wire-frame I/O) inside a live guard span — the PR 5 deadlock class |
//! | `lock-order`    | inconsistent acquisition order between two locks (a cycle in the workspace-wide acquisition graph), or re-acquiring a lock under its own guard |
//! | `atomic-order`  | any `Ordering` stronger than `Relaxed` without a justified `atomic-order` allow, and `Relaxed` used on an `AtomicBool` cross-thread flag |
//! | `guard-await`   | `.await` (or a `move` closure capturing the guard) inside a live guard span — future-proofing the async rewrite |
//! | `unsafe`        | any `unsafe` without a justified `unsafe` allow, and crate roots missing `#![forbid(unsafe_code)]` |

use crate::mask::{find_word, mask, Masked};
use crate::rules::{Finding, Rule};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Call-style helpers in this workspace that return a `MutexGuard`.
const LOCK_HELPERS: [&str; 2] = ["lock", "lock_tap"];

/// `.lock()` receivers that are re-entrant I/O handles, not mutexes.
const IO_LOCK_RECEIVERS: [&str; 3] = ["stdout", "stderr", "stdin"];

/// Guard-preserving adapters: `lock()` result combinators that still
/// yield the guard (poison recovery and friends).
const GUARD_ADAPTERS: [&str; 4] = ["unwrap", "expect", "unwrap_or_else", "unwrap_or_default"];

/// Methods that can block the calling thread (I/O, joins, channels).
const BLOCKING_METHODS: [&str; 11] = [
    "join",
    "recv",
    "recv_timeout",
    "recv_from",
    "accept",
    "read_exact",
    "read_to_end",
    "write_all",
    "flush",
    "wait",
    "wait_timeout",
];

/// Free or path-called functions that block: std sleeps/connects plus
/// this workspace's wire and console I/O helpers.
const BLOCKING_CALLS: [&str; 9] = [
    "sleep",
    "connect",
    "connect_timeout",
    "read_frame",
    "write_frame",
    "fetch_from_origin",
    "scrape_stats",
    "scrape_series",
    "write_out",
];

/// How the statement around an acquisition scopes its temporary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StmtKind {
    /// `let g = lock(..);` (or via a recovery `match`) — guard bound to
    /// the end of the enclosing block.
    Bound,
    /// Part of a larger statement — temporary to the statement's `;`.
    Statement,
    /// `if let` / `while let` / `match` scrutinee or `for` iterator —
    /// temporary extended to the end of the construct.
    Construct,
    /// Plain `if` / `while` condition — dropped before the body.
    Condition,
}

/// One acquisition and the byte span its guard is live for.
#[derive(Debug, Clone)]
struct GuardSpan {
    /// Normalized lock name (last path segment of the mutex expression).
    lock: String,
    /// Byte offset of the acquisition.
    pos: usize,
    /// 1-based acquisition line.
    line: usize,
    /// Byte offset at which the guard is dead.
    end: usize,
    /// The binding identifier, when let-bound.
    bound: Option<String>,
}

/// Runs the per-file concurrency rules (R7 lock-blocking, R9
/// atomic-order, R10 guard-await, R11 unsafe) on one masked source.
pub fn check_concurrency(rel: &Path, masked: &Masked, findings: &mut Vec<Finding>) {
    let guards = guard_spans(&masked.app_code);
    check_blocking(rel, masked, &guards, findings);
    check_guard_escape(rel, masked, &guards, findings);
    check_atomic_order(rel, masked, findings);
    check_unsafe(rel, masked, findings);
}

/// R8: the workspace-wide lock-acquisition graph. Every acquisition
/// inside another guard's live span adds an `outer -> inner` edge; a
/// cycle means two paths acquire the same locks in opposite orders, and
/// a self-edge means re-acquiring a non-reentrant `std::sync::Mutex`
/// under its own guard (certain deadlock).
///
/// Lock identity is by normalized name (`lock(&self.health)` and
/// `lock(&ctx.health)` are the same lock); distinct mutexes must use
/// distinct field names. That convention is the rule's known blind
/// spot: two unrelated mutexes that happen to share a field name are
/// treated as one lock and can produce a false self-edge or cycle — so
/// when a flagged name has more than one `Mutex` declaration site in
/// the workspace, the finding says so and names the fix (rename one
/// mutex, or carry a justified lock-order allow).
#[must_use]
pub fn check_lock_order(sources: &[(PathBuf, String)]) -> Vec<Finding> {
    let masked: Vec<(&PathBuf, Masked)> =
        sources.iter().map(|(rel, src)| (rel, mask(src))).collect();
    // Every `Mutex` declaration site per lock name, to tell a real
    // re-acquisition/cycle from a naming collision between distinct locks.
    let mut decl_sites: BTreeMap<String, Vec<PathBuf>> = BTreeMap::new();
    for (rel, m) in &masked {
        for name in collect_decl_names(&m.app_code, "Mutex", false) {
            decl_sites.entry(name).or_default().push((*rel).clone());
        }
    }
    let mut findings = Vec::new();
    // first acquisition site per ordered pair, for reporting
    let mut edges: BTreeMap<(String, String), (PathBuf, usize)> = BTreeMap::new();
    for (rel, m) in &masked {
        let guards = guard_spans(&m.app_code);
        for outer in &guards {
            for inner in &guards {
                if inner.pos <= outer.pos || inner.pos >= outer.end {
                    continue;
                }
                let line = inner.line;
                if m.allowed(Rule::LockOrder.name(), line) {
                    continue;
                }
                if inner.lock == outer.lock {
                    findings.push(Finding {
                        file: (*rel).clone(),
                        line,
                        rule: Rule::LockOrder,
                        message: format!(
                            "`{}` re-acquired while its own guard (line {}) is live: \
                             std::sync::Mutex is not reentrant — this deadlocks{}",
                            inner.lock,
                            outer.line,
                            collision_note(&inner.lock, &decl_sites)
                        ),
                    });
                    continue;
                }
                edges
                    .entry((outer.lock.clone(), inner.lock.clone()))
                    .or_insert_with(|| ((*rel).clone(), line));
            }
        }
    }
    findings.extend(report_cycles(&edges, &decl_sites));
    findings
}

/// A trailer for lock-order findings whose lock name has several
/// `Mutex` declaration sites: lock identity is by name, so the finding
/// may be a naming collision rather than a real ordering bug, and the
/// message must make the fix obvious.
fn collision_note(lock: &str, decl_sites: &BTreeMap<String, Vec<PathBuf>>) -> String {
    match decl_sites.get(lock) {
        Some(sites) if sites.len() > 1 => {
            let files: BTreeSet<String> = sites.iter().map(|p| p.display().to_string()).collect();
            format!(
                " [note: lock identity is by field name and `{lock}` has {} Mutex \
                 declarations ({}) — if those are distinct locks this finding is a naming \
                 collision: rename one, or justify with `lint:allow(lock-order) -- <why>`]",
                sites.len(),
                files.into_iter().collect::<Vec<_>>().join(", ")
            )
        }
        _ => String::new(),
    }
}

/// DFS over the acquisition graph; each distinct cycle becomes one
/// finding anchored at its first edge's site.
fn report_cycles(
    edges: &BTreeMap<(String, String), (PathBuf, usize)>,
    decl_sites: &BTreeMap<String, Vec<PathBuf>>,
) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    let mut findings = Vec::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        let mut path: Vec<&str> = vec![start];
        dfs_cycles(
            start,
            &adj,
            &mut path,
            &mut seen_cycles,
            edges,
            decl_sites,
            &mut findings,
        );
    }
    findings
}

fn dfs_cycles<'a>(
    node: &str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    seen: &mut BTreeSet<Vec<String>>,
    edges: &BTreeMap<(String, String), (PathBuf, usize)>,
    decl_sites: &BTreeMap<String, Vec<PathBuf>>,
    findings: &mut Vec<Finding>,
) {
    let Some(nexts) = adj.get(node) else { return };
    for &next in nexts {
        if let Some(at) = path.iter().position(|&n| n == next) {
            let cycle: Vec<&str> = path[at..].to_vec();
            // Canonical rotation: smallest name first, so each cycle is
            // reported once however it is discovered.
            let min_at = cycle
                .iter()
                .enumerate()
                .min_by_key(|(_, n)| **n)
                .map_or(0, |(i, _)| i);
            let canon: Vec<String> = (0..cycle.len())
                .map(|i| cycle[(min_at + i) % cycle.len()].to_string())
                .collect();
            if !seen.insert(canon.clone()) {
                continue;
            }
            let mut desc = String::new();
            for i in 0..canon.len() {
                let from = &canon[i];
                let to = &canon[(i + 1) % canon.len()];
                let site = edges
                    .get(&(from.clone(), to.clone()))
                    .map_or_else(String::new, |(f, l)| format!(" ({}:{l})", f.display()));
                if i == 0 {
                    desc.push_str(from);
                }
                desc.push_str(&format!(" -> {to}{site}"));
            }
            let (file, line) = edges
                .get(&(canon[0].clone(), canon[1 % canon.len()].clone()))
                .cloned()
                .unwrap_or_else(|| (PathBuf::from("<graph>"), 1));
            let notes: String = canon
                .iter()
                .map(|name| collision_note(name, decl_sites))
                .collect();
            findings.push(Finding {
                file,
                line,
                rule: Rule::LockOrder,
                message: format!(
                    "lock-order cycle: {desc} — different paths acquire these locks in \
                     opposite orders; pick one order or merge the critical sections{notes}"
                ),
            });
            continue;
        }
        path.push(next);
        dfs_cycles(next, adj, path, seen, edges, decl_sites, findings);
        path.pop();
    }
}

/// Every lock acquisition in the non-test code, with its guard span.
fn guard_spans(code: &str) -> Vec<GuardSpan> {
    let bytes = code.as_bytes();
    let mut spans = Vec::new();
    for helper in LOCK_HELPERS {
        let mut from = 0;
        while let Some(pos) = find_word(code, helper, from) {
            from = pos + helper.len();
            let after = skip_ws(bytes, pos + helper.len());
            if bytes.get(after) != Some(&b'(') {
                continue; // `fn lock<T>` declaration, not a call
            }
            if ident_opt(bytes, pos).as_deref() == Some("fn") {
                continue; // `fn lock_tap(..)` declaration
            }
            let open = after;
            let Some(close) = match_parens(bytes, open) else {
                continue;
            };
            let method = pos > 0 && bytes[pos - 1] == b'.';
            let lock = if method {
                // The receiver may sit on the previous line of a chain.
                let Some(recv) = ident_opt(bytes, pos - 1) else {
                    continue;
                };
                if IO_LOCK_RECEIVERS.contains(&recv.as_str()) {
                    continue;
                }
                recv
            } else {
                normalize_lock_expr(&code[open + 1..close])
            };
            let (kind, bound) = classify_statement(code, pos, close);
            let end = match kind {
                StmtKind::Bound => {
                    let block_end = enclosing_block_end(bytes, close + 1);
                    bound
                        .as_deref()
                        .and_then(|name| drop_site(code, name, close + 1, block_end))
                        .unwrap_or(block_end)
                }
                StmtKind::Statement => statement_end(bytes, close + 1),
                StmtKind::Construct => construct_end(bytes, close + 1),
                StmtKind::Condition => body_open(bytes, close + 1),
            };
            spans.push(GuardSpan {
                lock,
                pos,
                line: line_of(code, pos),
                end,
                bound,
            });
        }
    }
    spans.sort_by_key(|g| g.pos);
    spans
}

/// R7: blocking calls inside a live guard span.
fn check_blocking(rel: &Path, masked: &Masked, guards: &[GuardSpan], findings: &mut Vec<Finding>) {
    let code = &masked.app_code;
    for g in guards {
        let mut sites: Vec<(usize, String)> = Vec::new();
        for m in BLOCKING_METHODS {
            let mut from = g.pos;
            while let Some(pos) = find_word(code, m, from) {
                if pos >= g.end {
                    break;
                }
                from = pos + m.len();
                let after = pos + m.len();
                if code.as_bytes().get(pos.wrapping_sub(1)) == Some(&b'.')
                    && code.as_bytes().get(after) == Some(&b'(')
                {
                    sites.push((pos, format!(".{m}(..)")));
                }
            }
        }
        for c in BLOCKING_CALLS {
            let mut from = g.pos;
            while let Some(pos) = find_word(code, c, from) {
                if pos >= g.end {
                    break;
                }
                from = pos + c.len();
                let after = pos + c.len();
                let preceded_by_dot = pos > 0 && code.as_bytes()[pos - 1] == b'.';
                if !preceded_by_dot && code.as_bytes().get(after) == Some(&b'(') {
                    sites.push((pos, format!("{c}(..)")));
                }
            }
        }
        sites.sort();
        for (pos, what) in sites {
            let line = line_of(code, pos);
            if masked.allowed(Rule::LockBlocking.name(), line) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: Rule::LockBlocking,
                message: format!(
                    "blocking call `{what}` while the `{}` guard (line {}) is live: \
                     a thread blocked here wedges every other `{}` user — drop the \
                     guard first (the PR 5 deadlock class)",
                    g.lock, g.line, g.lock
                ),
            });
        }
    }
}

/// R10: a guard held across `.await`, or captured by a `move` closure.
fn check_guard_escape(
    rel: &Path,
    masked: &Masked,
    guards: &[GuardSpan],
    findings: &mut Vec<Finding>,
) {
    let code = &masked.app_code;
    let bytes = code.as_bytes();
    for g in guards {
        let mut from = g.pos;
        while let Some(pos) = find_word(code, "await", from) {
            if pos >= g.end {
                break;
            }
            from = pos + 5;
            if pos == 0 || bytes[pos - 1] != b'.' {
                continue;
            }
            let line = line_of(code, pos);
            if masked.allowed(Rule::GuardAwait.name(), line) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: Rule::GuardAwait,
                message: format!(
                    "`.await` while the `{}` guard (line {}) is live: the guard is held \
                     across the suspension point and blocks every other task — scope it \
                     to end before awaiting",
                    g.lock, g.line
                ),
            });
        }
        // A let-bound guard named inside a `move` closure within its span
        // escapes into a callback that may outlive (or re-enter) the
        // critical section.
        let Some(name) = &g.bound else { continue };
        let mut from = g.pos;
        while let Some(mv) = find_word(code, "move", from) {
            if mv >= g.end {
                break;
            }
            from = mv + 4;
            let after = skip_ws(bytes, mv + 4);
            if bytes.get(after) != Some(&b'|') {
                continue;
            }
            let Some(used) = find_word(code, name, after) else {
                continue;
            };
            if used >= g.end {
                continue;
            }
            let line = line_of(code, mv);
            if masked.allowed(Rule::GuardAwait.name(), line) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: Rule::GuardAwait,
                message: format!(
                    "guard `{name}` (lock `{}`, line {}) is captured by a `move` closure: \
                     the guard escapes its critical section",
                    g.lock, g.line
                ),
            });
        }
    }
}

/// Atomic orderings stronger than `Relaxed`.
const STRONG_ORDERINGS: [&str; 4] = ["SeqCst", "AcqRel", "Acquire", "Release"];

/// R9: the atomic-ordering audit.
///
/// Every non-`Relaxed` ordering must carry a justified `atomic-order`
/// allow — strong orderings are correctness claims
/// about pairing, and the justification is where that pairing is
/// documented. Conversely `Relaxed` on an `AtomicBool` flag is flagged:
/// flags hand control to another thread, which is exactly what `Relaxed`
/// does not order (pure `AtomicU64` counters stay `Relaxed`, unflagged).
fn check_atomic_order(rel: &Path, masked: &Masked, findings: &mut Vec<Finding>) {
    let code = &masked.app_code;
    let flags = collect_atomic_bool_names(code);
    for strong in STRONG_ORDERINGS {
        let pat = format!("Ordering::{strong}");
        let mut from = 0;
        while let Some(pos) = find_word(code, &pat, from) {
            from = pos + pat.len();
            let line = line_of(code, pos);
            if masked.allowed(Rule::AtomicOrder.name(), line) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: Rule::AtomicOrder,
                message: format!(
                    "`Ordering::{strong}` is a cross-thread pairing claim: document what \
                     it synchronizes with via `lint:allow(atomic-order) -- <pairing>`"
                ),
            });
        }
    }
    let mut from = 0;
    while let Some(pos) = find_word(code, "Ordering::Relaxed", from) {
        from = pos + "Ordering::Relaxed".len();
        let Some((recv, op)) = enclosing_atomic_op(code, pos) else {
            continue;
        };
        if !flags.contains(&recv) || !matches!(op.as_str(), "load" | "store" | "swap") {
            continue;
        }
        let line = line_of(code, pos);
        if masked.allowed(Rule::AtomicOrder.name(), line) {
            continue;
        }
        findings.push(Finding {
            file: rel.to_path_buf(),
            line,
            rule: Rule::AtomicOrder,
            message: format!(
                "`Relaxed` {op} on AtomicBool flag `{recv}`: a cross-thread handoff flag \
                 orders nothing under Relaxed — use a Release store / Acquire load pair \
                 (and justify it with lint:allow(atomic-order))"
            ),
        });
    }
}

/// R11: `unsafe` requires a justification, and crate roots must carry
/// `#![forbid(unsafe_code)]` (waived only by a justified `unsafe` allow
/// covering line 1).
fn check_unsafe(rel: &Path, masked: &Masked, findings: &mut Vec<Finding>) {
    let code = &masked.app_code;
    let mut from = 0;
    while let Some(pos) = find_word(code, "unsafe", from) {
        from = pos + "unsafe".len();
        let line = line_of(code, pos);
        if masked.allowed(Rule::UnsafeCode.name(), line) {
            continue;
        }
        findings.push(Finding {
            file: rel.to_path_buf(),
            line,
            rule: Rule::UnsafeCode,
            message: "`unsafe` in a forbid-by-default workspace: justify with \
                      `lint:allow(unsafe) -- <why the invariant holds>`"
                .to_string(),
        });
    }
    let path = rel.to_string_lossy().replace('\\', "/");
    let is_crate_root = path.ends_with("src/lib.rs") || path.ends_with("src/main.rs");
    if is_crate_root
        && !masked.code.contains("#![forbid(unsafe_code)]")
        && !masked.allowed(Rule::UnsafeCode.name(), 1)
    {
        findings.push(Finding {
            file: rel.to_path_buf(),
            line: 1,
            rule: Rule::UnsafeCode,
            message: "crate root is missing `#![forbid(unsafe_code)]`: every crate \
                      without unsafe forbids it at the root"
                .to_string(),
        });
    }
}

// --------------------------------------------------------------------------
// span machinery
// --------------------------------------------------------------------------

/// Classifies the statement containing an acquisition (see [`StmtKind`])
/// and extracts the binding name for `let`-bound guards.
fn classify_statement(code: &str, acq_pos: usize, call_close: usize) -> (StmtKind, Option<String>) {
    let bytes = code.as_bytes();
    let mut start = acq_pos;
    while start > 0 && !matches!(bytes[start - 1], b';' | b'{' | b'}') {
        start -= 1;
    }
    let prefix = code[start..acq_pos].trim_start();
    if prefix.starts_with("let ") {
        let name = let_binding_name(prefix);
        // A recovery `match x.lock() { .. }` still binds the guard.
        if contains_kw(prefix, "match") {
            return (StmtKind::Bound, name);
        }
        let after = after_adapters(bytes, call_close + 1);
        let next = skip_ws(bytes, after);
        if bytes.get(next) == Some(&b';') {
            return (StmtKind::Bound, name);
        }
        // `let v = lock(..).method(..)` — the binding is not the guard.
        return (StmtKind::Statement, None);
    }
    if prefix.starts_with("if let ") || prefix.starts_with("while let ") {
        return (StmtKind::Construct, None);
    }
    if prefix.starts_with("match ") || prefix.starts_with("for ") {
        return (StmtKind::Construct, None);
    }
    if prefix.starts_with("if ") || prefix.starts_with("while ") {
        return (StmtKind::Condition, None);
    }
    (StmtKind::Statement, None)
}

/// The identifier bound by a `let [mut] name ...` prefix, if simple.
fn let_binding_name(prefix: &str) -> Option<String> {
    let rest = prefix.strip_prefix("let ")?.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    Some(rest[..end].to_string())
}

/// True when `kw` appears word-bounded in `text`.
fn contains_kw(text: &str, kw: &str) -> bool {
    find_word(text, kw, 0).is_some()
}

/// Consumes guard-preserving adapter calls (`.unwrap_or_else(..)` …)
/// starting at `i` (just past the lock call's close paren); returns the
/// index after the last adapter.
fn after_adapters(bytes: &[u8], mut i: usize) -> usize {
    loop {
        let dot = skip_ws(bytes, i);
        if bytes.get(dot) != Some(&b'.') {
            return i;
        }
        let name_start = dot + 1;
        let mut j = name_start;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        let name = std::str::from_utf8(&bytes[name_start..j]).unwrap_or("");
        if !GUARD_ADAPTERS.contains(&name) {
            return i;
        }
        let open = skip_ws(bytes, j);
        if bytes.get(open) != Some(&b'(') {
            return i;
        }
        match match_parens(bytes, open) {
            Some(close) => i = close + 1,
            None => return i,
        }
    }
}

/// Byte offset of the `}` closing the block enclosing position `i`.
fn enclosing_block_end(bytes: &[u8], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'(' => depth += 1,
            b'}' | b')' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Byte offset just past the `;` ending the current statement.
fn statement_end(bytes: &[u8], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < bytes.len() {
        match bytes[i] {
            b';' if depth == 0 => return i,
            b'{' | b'(' => depth += 1,
            b'}' | b')' => {
                if depth == 0 {
                    return i;
                }
                depth -= 1;
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Byte offset of the first body-opening `{` at the current nesting.
fn body_open(bytes: &[u8], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < bytes.len() {
        match bytes[i] {
            b'{' if depth == 0 => return i,
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    i
}

/// Byte offset of the `}` closing the construct whose body opens at the
/// next top-level `{` (covers `if let`/`while let`/`match`/`for`; an
/// `else` continuation is not tracked — a conservative under-approx).
fn construct_end(bytes: &[u8], i: usize) -> usize {
    let open = body_open(bytes, i);
    match_braces(bytes, open).unwrap_or(bytes.len())
}

/// The byte offset of an explicit `drop(name)` inside `[from, to)`.
fn drop_site(code: &str, name: &str, from: usize, to: usize) -> Option<usize> {
    let bytes = code.as_bytes();
    let mut at = from;
    while let Some(pos) = find_word(code, "drop", at) {
        if pos >= to {
            return None;
        }
        at = pos + 4;
        let open = skip_ws(bytes, pos + 4);
        if bytes.get(open) != Some(&b'(') {
            continue;
        }
        let close = match_parens(bytes, open)?;
        if code[open + 1..close].trim() == name {
            return Some(pos);
        }
    }
    None
}

/// Matching `)` for the `(` at `open`.
fn match_parens(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

/// Matching `}` for the `{` at `open`.
fn match_braces(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(k);
                }
            }
            _ => {}
        }
    }
    None
}

fn skip_ws(bytes: &[u8], mut i: usize) -> usize {
    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// The identifier ending just before byte `end`.
fn ident_back(bytes: &[u8], end: usize) -> String {
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    String::from_utf8_lossy(&bytes[start..end]).into_owned()
}

/// Normalizes a lock-helper argument to a lock name: strips borrows and
/// qualifiers and keeps the last path segment (`&self.health` →
/// `health`).
fn normalize_lock_expr(arg: &str) -> String {
    let arg = arg.trim().trim_start_matches('&').trim_start();
    let arg = arg.strip_prefix("mut ").unwrap_or(arg).trim();
    let last = arg.rsplit('.').next().unwrap_or(arg);
    let name: String = last
        .chars()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        "<anon>".to_string()
    } else {
        name
    }
}

/// 1-based line containing byte `offset`.
fn line_of(code: &str, offset: usize) -> usize {
    code.as_bytes()[..offset]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Identifiers declared (or initialized) as `AtomicBool` in this file —
/// through an `Arc<..>` wrapper or an `Arc::new(AtomicBool::new(..))`
/// initializer chain.
fn collect_atomic_bool_names(code: &str) -> Vec<String> {
    collect_decl_names(code, "AtomicBool", true)
}

/// Identifiers declared (or initialized) as type `ty` — through an
/// `Arc<..>` wrapper or an `Arc::new(ty::new(..))` initializer chain.
/// With `dedup` false every declaration site is kept, so callers can
/// count how many distinct declarations share one name.
fn collect_decl_names(code: &str, ty: &str, dedup: bool) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut names = Vec::new();
    let mut from = 0;
    while let Some(pos) = find_word(code, ty, from) {
        from = pos + ty.len();
        let mut q = pos;
        let name = loop {
            while q > 0 && bytes[q - 1].is_ascii_whitespace() {
                q -= 1;
            }
            if q == 0 {
                break None;
            }
            match bytes[q - 1] {
                // Unwrap `Arc<AtomicBool>` / `Arc::new(AtomicBool..` layers.
                b'<' | b'(' => {
                    q -= 1;
                    while q > 0
                        && (bytes[q - 1].is_ascii_alphanumeric()
                            || bytes[q - 1] == b'_'
                            || bytes[q - 1] == b':')
                    {
                        q -= 1;
                    }
                }
                // `name: AtomicBool` ascription (not a `::` path).
                b':' if q < 2 || bytes[q - 2] != b':' => {
                    break ident_opt(bytes, q - 1);
                }
                // `name = AtomicBool::new(..)` initializer.
                b'=' if q >= 2 && bytes[q - 2] != b'=' && bytes[q - 2] != b'!' => {
                    break ident_opt(bytes, q - 1);
                }
                _ => break None,
            }
        };
        if let Some(name) = name {
            if !dedup || !names.contains(&name) {
                names.push(name);
            }
        }
    }
    names
}

/// Like [`ident_back`] but skips trailing whitespace first and rejects
/// empty/numeric results.
fn ident_opt(bytes: &[u8], mut end: usize) -> Option<String> {
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let name = ident_back(bytes, end);
    if name.is_empty() || name.as_bytes()[0].is_ascii_digit() {
        None
    } else {
        Some(name)
    }
}

/// For an `Ordering::..` argument, the `(receiver, method)` of the
/// enclosing atomic call: scans back to the nearest unmatched `(` and
/// reads `receiver.method` before it.
fn enclosing_atomic_op(code: &str, ord_pos: usize) -> Option<(String, String)> {
    let bytes = code.as_bytes();
    let mut depth = 0i32;
    let mut i = ord_pos;
    let open = loop {
        if i == 0 {
            return None;
        }
        i -= 1;
        match bytes[i] {
            b')' => depth += 1,
            b'(' => {
                if depth == 0 {
                    break i;
                }
                depth -= 1;
            }
            b';' | b'{' | b'}' => return None,
            _ => {}
        }
    };
    let method = ident_back(bytes, open);
    if method.is_empty() {
        return None;
    }
    let dot = open - method.len();
    if dot == 0 || bytes[dot - 1] != b'.' {
        return None;
    }
    let recv = ident_back(bytes, dot - 1);
    if recv.is_empty() {
        return None;
    }
    Some((recv, method))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(src: &str) -> Vec<GuardSpan> {
        guard_spans(&mask(src).app_code)
    }

    #[test]
    fn bound_guard_lives_to_block_end() {
        let src = "fn f(&self) {\n    let g = lock(&self.node);\n    g.touch();\n}\n";
        let s = spans(src);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].lock, "node");
        assert_eq!(s[0].bound.as_deref(), Some("g"));
        assert!(src[s[0].end..].starts_with('}'));
    }

    #[test]
    fn temporary_in_statement_dies_at_semicolon() {
        let src = "fn f(&self) {\n    let v = lock(&self.node).value();\n    blocking();\n}\n";
        let s = spans(src);
        assert_eq!(s.len(), 1);
        assert!(s[0].bound.is_none());
        assert!(src[..s[0].end].ends_with("value()"));
    }

    #[test]
    fn if_let_scrutinee_extends_to_construct_end() {
        let src = "fn f(&self) {\n    if let Some(s) = lock(&self.sink).as_ref() {\n        s.emit();\n    }\n    after();\n}\n";
        let s = spans(src);
        assert_eq!(s.len(), 1);
        let span = &src[s[0].pos..s[0].end];
        assert!(span.contains("s.emit"), "body is inside the span: {span:?}");
        assert!(
            !span.contains("after"),
            "span ends at the if-let close: {span:?}"
        );
    }

    #[test]
    fn plain_if_condition_drops_before_body() {
        let src =
            "fn f(&self) {\n    if lock(&self.node).ready() {\n        blocking();\n    }\n}\n";
        let s = spans(src);
        assert_eq!(s.len(), 1);
        assert!(
            src[s[0].end..].starts_with('{'),
            "span ends at the body open"
        );
    }

    #[test]
    fn drop_truncates_bound_span() {
        let src = "fn f(&self) {\n    let g = lock(&self.node);\n    g.touch();\n    drop(g);\n    blocking();\n}\n";
        let s = spans(src);
        assert!(src[s[0].end..].starts_with("drop(g)"));
    }

    #[test]
    fn stdout_lock_is_not_a_mutex() {
        let src = "fn main() {\n    let stdout = std::io::stdout();\n    let mut out = stdout.lock();\n    out.flush();\n}\n";
        assert!(spans(src).is_empty());
    }

    #[test]
    fn atomic_bool_names_are_collected() {
        let code = "struct D { stop: Arc<AtomicBool>, n: AtomicU64 }\n\
                    fn f() { let halt = Arc::new(AtomicBool::new(false)); }\n";
        let names = collect_atomic_bool_names(&mask(code).app_code);
        assert_eq!(names, vec!["stop".to_string(), "halt".to_string()]);
    }

    #[test]
    fn enclosing_op_resolves_receiver() {
        let code = "fn f(&self) { self.stop.store(true, Ordering::Relaxed); }";
        let pos = code.find("Ordering").unwrap();
        assert_eq!(
            enclosing_atomic_op(code, pos),
            Some(("stop".to_string(), "store".to_string()))
        );
    }
}
