#![forbid(unsafe_code)]
//! `coopcache-lint` — a zero-dependency conformance linter for this
//! workspace.
//!
//! The paper's EA-vs-ad-hoc comparison (Figs. 1–3, Table 1) is only
//! meaningful if the simulators are bit-deterministic and the library
//! crates cannot panic under load. Clippy cannot enforce either property
//! *for this project's definitions* — "no wall-clock reads outside the
//! clock abstraction", "no hash-order iteration where order reaches an
//! event stream" — so this crate hand-rolls a masking lexer
//! ([`mask`]) and a small set of textual rules ([`rules`]) over it. No
//! `syn`, no `regex`: the crate registry is unreachable in this
//! environment, and the rules are simple enough that masked substring
//! scanning is both sufficient and auditable.
//!
//! Run it with `cargo run -p coopcache-lint` (or `scripts/check.sh lint`).
//! Findings print as `file:line: [rule] message` and the process exits
//! nonzero, so the pre-PR gate fails on regressions. Suppress a finding
//! with a justified escape hatch trailing the offending line or in a
//! comment (which may wrap) directly above it:
//!
//! ```text
//! // lint:allow(panic) -- documented caller contract: doc must be tracked
//! ```

pub mod concurrency;
pub mod mask;
pub mod rules;

pub use concurrency::check_lock_order;
pub use mask::{mask, AllowDirective, Masked};
pub use rules::{
    check_event_taxonomy, check_paranoid_wiring, crate_of, lint_source, Finding, Rule,
};

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, VCS state, and
/// test-only trees (integration tests, benches, examples, and this
/// crate's deliberately-violating fixtures).
const SKIP_DIRS: [&str; 7] = [
    "target", ".git", "tests", "benches", "examples", "fixtures", "results",
];

/// Collects every production `.rs` file under `root`: files living under
/// a `src` directory, skipping [`SKIP_DIRS`]. Sorted for deterministic
/// output.
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn collect_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") && path.iter().any(|c| c.to_string_lossy() == "src") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Lints the whole workspace rooted at `root`: per-file rules (R1–R4,
/// R7, R9–R11) on every production source, then the cross-file checks —
/// R5 (dead event taxonomy) against `crates/obs/src/event.rs`, R6
/// (paranoid audit wiring) against `crates/core/src/cache.rs`, and R8
/// (lock-order cycles) over the workspace-wide acquisition graph.
///
/// # Errors
///
/// Propagates file-read failures.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut sources: Vec<(PathBuf, String)> = Vec::new();
    for path in collect_files(root)? {
        let src = std::fs::read_to_string(&path)?;
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        sources.push((rel, src));
    }
    let mut findings = Vec::new();
    for (rel, src) in &sources {
        findings.extend(lint_source(rel, src));
    }
    let ends_with = |rel: &Path, suffix: &str| rel.to_string_lossy().replace('\\', "/") == suffix;
    if let Some((rel, src)) = sources
        .iter()
        .find(|(rel, _)| ends_with(rel, "crates/obs/src/event.rs"))
    {
        let others: Vec<(PathBuf, String)> = sources
            .iter()
            .filter(|(r, _)| crate_of(r) != Some("obs"))
            .cloned()
            .collect();
        findings.extend(check_event_taxonomy(rel, src, &others));
    }
    if let Some((rel, src)) = sources
        .iter()
        .find(|(rel, _)| ends_with(rel, "crates/core/src/cache.rs"))
    {
        findings.extend(check_paranoid_wiring(rel, src));
    }
    findings.extend(check_lock_order(&sources));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(findings)
}

/// Number of files [`lint_workspace`] would scan (for the summary line).
///
/// # Errors
///
/// Propagates directory-read failures.
pub fn count_files(root: &Path) -> io::Result<usize> {
    Ok(collect_files(root)?.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_dirs_cover_test_trees() {
        for d in ["tests", "benches", "fixtures", "target"] {
            assert!(SKIP_DIRS.contains(&d));
        }
    }
}
