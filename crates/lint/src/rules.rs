//! The project-specific conformance rules.
//!
//! Every rule scans the masked view of a source file (see
//! [`crate::mask`]): string/char literal contents and comments are
//! blanked, and — for all rules — `#[cfg(test)]` / `#[test]` items are
//! excluded via the `app_code` view. Findings can be suppressed with a
//! justified allow comment — a rule name and a reason, as in
//! `// lint:allow(panic) -- reached only on bookkeeping corruption` —
//! trailing the offending line or in the comment directly above it
//! (the comment may wrap across lines).
//!
//! | rule              | scope                         | what it catches |
//! |-------------------|-------------------------------|-----------------|
//! | `wall-clock`      | everywhere but `net/src/clock.rs` | `Instant::now` / `SystemTime::now` leaking into logic |
//! | `panic`           | the eight library crates      | `.unwrap()`, `.expect(`, `panic!(`, `unreachable!(` |
//! | `map-iter`        | `core`, `sim`, `proxy`        | iterating a `HashMap`/`HashSet` (nondeterministic order), or an arena `iter_unordered()` walk that escapes unsorted |
//! | `float-eq`        | everywhere                    | `==` / `!=` against a float literal |
//! | `dead-event`      | workspace-wide                | `Event` variants never constructed outside `obs` |
//! | `paranoid-wiring` | `core/src/cache.rs`           | mutating cache methods missing the invariant audit |
//! | `lock-blocking`   | everywhere                    | blocking calls (join, I/O, sleep, channel recv) under a live `MutexGuard` |
//! | `lock-order`      | workspace-wide                | cycles in the lock-acquisition graph, or re-acquiring a held lock |
//! | `atomic-order`    | everywhere                    | unjustified non-`Relaxed` orderings; `Relaxed` on cross-thread `AtomicBool` flags |
//! | `guard-await`     | everywhere                    | a guard live across `.await` or captured by a `move` closure |
//! | `unsafe`          | everywhere                    | unjustified `unsafe`; crate roots missing `#![forbid(unsafe_code)]` |
//!
//! The concurrency rules (R7–R11) live in [`crate::concurrency`].

use crate::mask::{find_word, mask, Masked};
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose non-test code must be panic-free (rule `panic`).
pub const PANIC_FREE_CRATES: [&str; 9] = [
    "core",
    "sim",
    "proxy",
    "types",
    "trace",
    "metrics",
    "obs",
    "net",
    "interleave",
];

/// Crates where hash-order iteration can reach outputs, events, or
/// eviction decisions (rule `map-iter`).
pub const MAP_ITER_CRATES: [&str; 3] = ["core", "sim", "proxy"];

/// The one file allowed to read the wall clock.
pub const CLOCK_FILE: &str = "crates/net/src/clock.rs";

/// A conformance rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// R1: wall-clock reads outside the clock abstraction.
    WallClock,
    /// R2: panicking constructs in library crates.
    Panic,
    /// R3: hash-order iteration in determinism-critical crates.
    MapIter,
    /// R4: float equality comparison.
    FloatEq,
    /// R5: `Event` variant never constructed outside `obs`.
    DeadEvent,
    /// R6: cache mutation path missing its invariant audit call.
    ParanoidWiring,
    /// R7: a blocking call while a `MutexGuard` is live.
    LockBlocking,
    /// R8: a cycle in the workspace lock-acquisition graph.
    LockOrder,
    /// R9: an unjustified atomic ordering (or a too-weak one on a flag).
    AtomicOrder,
    /// R10: a guard live across `.await` or escaping into a closure.
    GuardAwait,
    /// R11: unjustified `unsafe`, or a crate root not forbidding it.
    UnsafeCode,
    /// A malformed `lint:allow` directive.
    BadAllow,
}

impl Rule {
    /// The name used in diagnostics and in allow directives.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Self::WallClock => "wall-clock",
            Self::Panic => "panic",
            Self::MapIter => "map-iter",
            Self::FloatEq => "float-eq",
            Self::DeadEvent => "dead-event",
            Self::ParanoidWiring => "paranoid-wiring",
            Self::LockBlocking => "lock-blocking",
            Self::LockOrder => "lock-order",
            Self::AtomicOrder => "atomic-order",
            Self::GuardAwait => "guard-await",
            Self::UnsafeCode => "unsafe",
            Self::BadAllow => "bad-allow",
        }
    }

    /// All rule names accepted by `lint:allow`.
    pub const ALLOWABLE: [Rule; 11] = [
        Self::WallClock,
        Self::Panic,
        Self::MapIter,
        Self::FloatEq,
        Self::DeadEvent,
        Self::ParanoidWiring,
        Self::LockBlocking,
        Self::LockOrder,
        Self::AtomicOrder,
        Self::GuardAwait,
        Self::UnsafeCode,
    ];

    /// The concurrency-soundness subset (R7–R11), selected by the CLI's
    /// `--concurrency` flag.
    pub const CONCURRENCY: [Rule; 5] = [
        Self::LockBlocking,
        Self::LockOrder,
        Self::AtomicOrder,
        Self::GuardAwait,
        Self::UnsafeCode,
    ];

    /// True for rules in the [`Rule::CONCURRENCY`] subset.
    #[must_use]
    pub fn is_concurrency(self) -> bool {
        Self::CONCURRENCY.contains(&self)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One diagnostic: a rule fired at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// The `crates/<name>` component of a workspace-relative path, if any.
#[must_use]
pub fn crate_of(rel: &Path) -> Option<&str> {
    let mut parts = rel.iter();
    loop {
        match parts.next()?.to_str()? {
            "crates" => return parts.next()?.to_str(),
            _ => continue,
        }
    }
}

fn unslash(rel: &Path) -> String {
    rel.to_string_lossy().replace('\\', "/")
}

/// Runs every per-file rule (R1–R4, R7, R9–R11, plus allow validation)
/// on one source.
#[must_use]
pub fn lint_source(rel: &Path, src: &str) -> Vec<Finding> {
    let masked = mask(src);
    let mut findings = Vec::new();
    let path = unslash(rel);
    let krate = crate_of(rel);

    check_allows(rel, &masked, &mut findings);
    if !path.ends_with(CLOCK_FILE) && !path.contains("/benches/") {
        check_wall_clock(rel, &masked, &mut findings);
    }
    if krate.is_some_and(|c| PANIC_FREE_CRATES.contains(&c)) {
        check_panics(rel, &masked, &mut findings);
    }
    if krate.is_some_and(|c| MAP_ITER_CRATES.contains(&c)) {
        check_map_iter(rel, &masked, &mut findings);
    }
    check_float_eq(rel, &masked, &mut findings);
    crate::concurrency::check_concurrency(rel, &masked, &mut findings);
    findings
}

/// Validates `lint:allow` directives: each must name a known rule and
/// carry a ` -- justification`.
fn check_allows(rel: &Path, masked: &Masked, findings: &mut Vec<Finding>) {
    for allow in &masked.allows {
        let known = Rule::ALLOWABLE.iter().any(|r| r.name() == allow.rule);
        if !known {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: allow.line,
                rule: Rule::BadAllow,
                message: format!(
                    "lint:allow names unknown rule `{}` (known: {})",
                    allow.rule,
                    Rule::ALLOWABLE.map(Rule::name).join(", ")
                ),
            });
        } else if !allow.justified {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: allow.line,
                rule: Rule::BadAllow,
                message: format!(
                    "lint:allow({}) needs a justification: `lint:allow({}) -- <why>`",
                    allow.rule, allow.rule
                ),
            });
        }
    }
}

/// R1: `Instant::now` / `SystemTime::now` outside the clock abstraction.
fn check_wall_clock(rel: &Path, masked: &Masked, findings: &mut Vec<Finding>) {
    for pat in ["Instant::now", "SystemTime::now"] {
        let mut from = 0;
        while let Some(pos) = find_word(&masked.app_code, pat, from) {
            from = pos + pat.len();
            let line = masked.line_of(pos);
            if masked.allowed(Rule::WallClock.name(), line) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: Rule::WallClock,
                message: format!(
                    "`{pat}` outside {CLOCK_FILE}: route through the SharedClock abstraction \
                     so simulated paths stay deterministic"
                ),
            });
        }
    }
}

/// R2: panicking constructs in non-test library-crate code.
fn check_panics(rel: &Path, masked: &Masked, findings: &mut Vec<Finding>) {
    for pat in [".unwrap()", ".expect(", "panic!(", "unreachable!("] {
        let mut from = 0;
        while let Some(rel_pos) = masked.app_code.get(from..).and_then(|s| s.find(pat)) {
            let pos = from + rel_pos;
            from = pos + pat.len();
            // Word-bound the leading identifier of macro patterns so e.g.
            // a hypothetical `no_panic!(` is not flagged.
            if !pat.starts_with('.') {
                let bytes = masked.app_code.as_bytes();
                if pos > 0 && (bytes[pos - 1].is_ascii_alphanumeric() || bytes[pos - 1] == b'_') {
                    continue;
                }
            }
            let line = masked.line_of(pos);
            if masked.allowed(Rule::Panic.name(), line) {
                continue;
            }
            let shown = pat.trim_end_matches('(');
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: Rule::Panic,
                message: format!(
                    "`{shown}` in non-test library code: return a typed error, restructure, \
                     or justify with `lint:allow(panic) -- <why>`"
                ),
            });
        }
    }
}

/// Iteration methods whose visit order is the hasher's, not the data's.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// R3: iterating a `HashMap`/`HashSet` where order can leak out.
fn check_map_iter(rel: &Path, masked: &Masked, findings: &mut Vec<Finding>) {
    check_unordered_iter(rel, masked, findings);
    let code = &masked.app_code;
    let names = collect_hash_names(code);
    for name in &names {
        let mut from = 0;
        while let Some(pos) = find_word(code, name, from) {
            let end = pos + name.len();
            from = end;
            let flagged = iterates_right(code, end) || iterated_by_for(code, pos);
            if !flagged {
                continue;
            }
            let line = masked.line_of(pos);
            if masked.allowed(Rule::MapIter.name(), line) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: Rule::MapIter,
                message: format!(
                    "iteration over hash collection `{name}`: order is nondeterministic — \
                     use a BTreeMap/BTreeSet or sort before emitting"
                ),
            });
        }
    }
}

/// R3, open-addressing clause: `iter_unordered()` — the arena/table
/// iterator the sharded store exposes — visits slots in allocation
/// order, which is operation history, not a semantic order. The blessed
/// shard-walk pattern collects into a local and sorts it before the
/// result escapes:
///
/// ```text
/// let mut out: Vec<_> = self.entries.iter_unordered().map(..).collect();
/// out.sort_unstable_by_key(|e| e.doc);
/// ```
///
/// That pattern is recognised statically; any other use of
/// `iter_unordered` in a determinism-critical crate is flagged, so shard
/// walks cannot silently leak allocation order the way a blanket
/// `lint:allow` would let them.
fn check_unordered_iter(rel: &Path, masked: &Masked, findings: &mut Vec<Finding>) {
    let code = &masked.app_code;
    let mut from = 0;
    while let Some(pos) = find_word(code, "iter_unordered", from) {
        from = pos + "iter_unordered".len();
        // The declaration site (`fn iter_unordered`) defines the
        // iterator; only call sites can leak its order.
        if code[..pos].trim_end().ends_with("fn") {
            continue;
        }
        let line = masked.line_of(pos);
        if masked.allowed(Rule::MapIter.name(), line) {
            continue;
        }
        if collected_then_sorted(code, pos) {
            continue;
        }
        findings.push(Finding {
            file: rel.to_path_buf(),
            line,
            rule: Rule::MapIter,
            message: "`iter_unordered()` walks the arena in allocation order: \
                      collect into a local and sort it before the walk escapes \
                      (the ordered shard loop), or justify with \
                      `lint:allow(map-iter) -- <why>`"
                .to_owned(),
        });
    }
}

/// True when the `iter_unordered` call at `pos` is the ordered shard
/// loop: its statement binds `let [mut] <name> = …` and `<name>.sort*` is
/// called later in the same item (searched up to the next `fn`).
fn collected_then_sorted(code: &str, pos: usize) -> bool {
    let bytes = code.as_bytes();
    // Statement start: just past the previous statement/block boundary.
    let stmt_start = code[..pos].rfind([';', '{', '}']).map_or(0, |p| p + 1);
    let Some(let_at) = code[stmt_start..pos].rfind("let ") else {
        return false;
    };
    let mut name_at = stmt_start + let_at + 4;
    while code[name_at..].starts_with(char::is_whitespace) {
        name_at += 1;
    }
    if code[name_at..].starts_with("mut ") {
        name_at += 4;
        while code[name_at..].starts_with(char::is_whitespace) {
            name_at += 1;
        }
    }
    let mut name_end = name_at;
    while name_end < bytes.len()
        && (bytes[name_end].is_ascii_alphanumeric() || bytes[name_end] == b'_')
    {
        name_end += 1;
    }
    let name = &code[name_at..name_end];
    if name.is_empty() {
        return false;
    }
    // Scan from the end of the binding statement to the next `fn` item
    // for a sort call on the binding.
    let tail_start = code[pos..].find(';').map_or(code.len(), |p| pos + p + 1);
    let tail_end = find_word(code, "fn", tail_start).unwrap_or(code.len());
    let tail = &code[tail_start..tail_end];
    let mut f = 0;
    while let Some(np) = find_word(tail, name, f) {
        f = np + name.len();
        if tail[f..].starts_with(".sort") {
            return true;
        }
    }
    false
}

/// Identifiers declared as `HashMap`/`HashSet` in this file, via either a
/// type ascription (`name: HashMap<...>`) or an initializer
/// (`name = HashMap::new()` / `with_capacity`).
fn collect_hash_names(code: &str) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut names: Vec<String> = Vec::new();
    for ty in ["HashMap", "HashSet"] {
        let mut from = 0;
        while let Some(pos) = find_word(code, ty, from) {
            from = pos + ty.len();
            let mut q = pos;
            while q > 0 && bytes[q - 1].is_ascii_whitespace() {
                q -= 1;
            }
            if q == 0 {
                continue;
            }
            let name = match bytes[q - 1] {
                // `name: HashMap<...>` — but not the `::` of a path.
                b':' if q < 2 || bytes[q - 2] != b':' => ident_before(bytes, q - 1),
                // `name = HashMap::new()` / `name = HashMap::with_capacity(..)`.
                b'=' if q >= 2 && bytes[q - 2] != b'=' && bytes[q - 2] != b'!' => {
                    ident_before(bytes, q - 1)
                }
                _ => None,
            };
            if let Some(name) = name {
                if !names.contains(&name) {
                    names.push(name);
                }
            }
        }
    }
    names
}

/// The identifier ending just before byte `end` (skipping whitespace).
fn ident_before(bytes: &[u8], mut end: usize) -> Option<String> {
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
        start -= 1;
    }
    if start == end || bytes[start].is_ascii_digit() {
        return None;
    }
    std::str::from_utf8(&bytes[start..end])
        .ok()
        .map(str::to_owned)
}

/// True when the text after a collection name calls an order-leaking
/// iteration method: `.iter()`, `.values()`, …
fn iterates_right(code: &str, end: usize) -> bool {
    let bytes = code.as_bytes();
    if bytes.get(end) != Some(&b'.') {
        return false;
    }
    let mut m = end + 1;
    let start = m;
    while m < bytes.len() && (bytes[m].is_ascii_alphanumeric() || bytes[m] == b'_') {
        m += 1;
    }
    let method = &code[start..m];
    bytes.get(m) == Some(&b'(') && ITER_METHODS.contains(&method)
}

/// True when the collection name at `pos` is the subject of a
/// `for x in [&[mut]] [self.]name` loop.
fn iterated_by_for(code: &str, pos: usize) -> bool {
    let bytes = code.as_bytes();
    let mut q = pos;
    // Skip a `self.` qualifier.
    if code[..q].ends_with("self.") {
        q -= 5;
    }
    while q > 0 && bytes[q - 1].is_ascii_whitespace() {
        q -= 1;
    }
    if code[..q].ends_with("mut") {
        q -= 3;
        while q > 0 && bytes[q - 1].is_ascii_whitespace() {
            q -= 1;
        }
    }
    if q > 0 && bytes[q - 1] == b'&' {
        q -= 1;
        while q > 0 && bytes[q - 1].is_ascii_whitespace() {
            q -= 1;
        }
    }
    code[..q].ends_with(" in") || code[..q].ends_with("\nin")
}

/// R4: `==` / `!=` where either operand is a float literal.
fn check_float_eq(rel: &Path, masked: &Masked, findings: &mut Vec<Finding>) {
    let code = &masked.app_code;
    let bytes = code.as_bytes();
    let mut i = 0;
    while i + 1 < bytes.len() {
        let is_eq = bytes[i] == b'=' && bytes[i + 1] == b'=';
        let is_ne = bytes[i] == b'!' && bytes[i + 1] == b'=';
        if !(is_eq || is_ne) {
            i += 1;
            continue;
        }
        // Exclude `<=`, `>=`, `=>`, `==` seen from its second byte, etc.
        if is_eq {
            let prev = i.checked_sub(1).map(|p| bytes[p]);
            if matches!(
                prev,
                Some(
                    b'<' | b'>'
                        | b'='
                        | b'!'
                        | b'+'
                        | b'-'
                        | b'*'
                        | b'/'
                        | b'%'
                        | b'&'
                        | b'|'
                        | b'^'
                )
            ) || bytes.get(i + 2) == Some(&b'=')
            {
                i += 2;
                continue;
            }
        }
        let left = operand_left(code, i);
        let right = operand_right(code, i + 2);
        if is_float_literal(&left) || is_float_literal(&right) {
            let line = masked.line_of(i);
            if !masked.allowed(Rule::FloatEq.name(), line) {
                let op = if is_eq { "==" } else { "!=" };
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line,
                    rule: Rule::FloatEq,
                    message: format!(
                        "float `{op}` comparison ({left} {op} {right}): compare with an \
                         epsilon or restructure around integers"
                    ),
                });
            }
        }
        i += 2;
    }
}

const OPERAND_CHARS: fn(u8) -> bool = |b| b.is_ascii_alphanumeric() || b == b'_' || b == b'.';

/// True when the byte is a sign glued to an exponent (`1e-3`, `2E+5`) —
/// part of the float token, not an operator.
fn exponent_sign(bytes: &[u8], at: usize) -> bool {
    (bytes[at] == b'+' || bytes[at] == b'-')
        && at >= 1
        && matches!(bytes[at - 1], b'e' | b'E')
        && at >= 2
        && bytes[at - 2].is_ascii_digit()
}

fn operand_left(code: &str, op_at: usize) -> String {
    let bytes = code.as_bytes();
    let mut end = op_at;
    while end > 0 && bytes[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    let mut start = end;
    while start > 0 && (OPERAND_CHARS(bytes[start - 1]) || exponent_sign(bytes, start - 1)) {
        start -= 1;
    }
    code[start..end].to_string()
}

fn operand_right(code: &str, after_op: usize) -> String {
    let bytes = code.as_bytes();
    let mut start = after_op;
    while start < bytes.len() && bytes[start].is_ascii_whitespace() {
        start += 1;
    }
    if bytes.get(start) == Some(&b'-') {
        start += 1;
    }
    let mut end = start;
    while end < bytes.len() && (OPERAND_CHARS(bytes[end]) || exponent_sign(bytes, end)) {
        end += 1;
    }
    let neg = after_op < start && code[after_op..start].contains('-');
    let mut tok = code[start..end].to_string();
    if neg {
        tok.insert(0, '-');
    }
    tok
}

/// True for tokens like `1.0`, `3.`, `1_000.25`, `2.5f64`, `1e-3`, `4f32`.
fn is_float_literal(tok: &str) -> bool {
    let t = tok.strip_prefix('-').unwrap_or(tok);
    if t.is_empty() || !t.as_bytes()[0].is_ascii_digit() {
        return false;
    }
    let (body, had_suffix) = match t.strip_suffix("f64").or_else(|| t.strip_suffix("f32")) {
        Some(b) => (b.trim_end_matches('_'), true),
        None => (t, false),
    };
    let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit() || b == b'_');
    if let Some((a, b)) = body.split_once('.') {
        return digits(a) && (b.is_empty() || digits(b));
    }
    if let Some((a, b)) = body.split_once(['e', 'E']) {
        let b = b.strip_prefix(['+', '-']).unwrap_or(b);
        return digits(a) && digits(b);
    }
    had_suffix && digits(body)
}

/// R5: every `Event` variant must be constructed somewhere outside `obs`.
///
/// `event_src` is the taxonomy file; `others` are `(rel_path, source)` for
/// every other scanned file (the `obs` crate itself is excluded by the
/// caller). Test code counts as a construction site: an event exercised
/// only by a driver's tests is still wired, just thinly.
#[must_use]
pub fn check_event_taxonomy(
    event_rel: &Path,
    event_src: &str,
    others: &[(PathBuf, String)],
) -> Vec<Finding> {
    let masked = mask(event_src);
    let mut findings = Vec::new();
    let Some(variants) = enum_variants(&masked, "Event") else {
        return findings;
    };
    let other_masked: Vec<String> = others.iter().map(|(_, src)| mask(src).code).collect();
    for (line, variant) in variants {
        let pat = format!("Event::{variant}");
        let constructed = other_masked.iter().any(|code| {
            let mut from = 0;
            while let Some(pos) = find_word(code, &pat, from) {
                // A construction or a match arm both prove wiring; only
                // construction sites matter, so skip `Event::X { .. } =>`
                // match arms by requiring no `=>` on the same expression?
                // Keeping it simple: any appearance outside `obs` counts —
                // a variant that is only ever matched, never built, still
                // fails because builders live outside `obs` too.
                let after = pos + pat.len();
                let tail = code[after..].trim_start();
                if tail.starts_with('{') || tail.starts_with('(') {
                    return true;
                }
                from = after;
            }
            false
        });
        if !constructed && !masked.allowed(Rule::DeadEvent.name(), line) {
            findings.push(Finding {
                file: event_rel.to_path_buf(),
                line,
                rule: Rule::DeadEvent,
                message: format!(
                    "Event::{variant} is never constructed outside `obs`: dead taxonomy — \
                     wire it into a driver or remove it"
                ),
            });
        }
    }
    findings
}

/// The variants of `pub enum <name>`: `(line, variant_name)` pairs.
fn enum_variants(masked: &Masked, name: &str) -> Option<Vec<(usize, String)>> {
    let pat = format!("enum {name}");
    let pos = find_word(&masked.code, &pat, 0)?;
    let bytes = masked.code.as_bytes();
    let open = masked.code[pos..].find('{')? + pos;
    let mut depth = 0usize;
    let mut variants = Vec::new();
    let mut expect_name = true;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'{' | b'(' | b'<' => {
                depth += 1;
                i += 1;
            }
            b'}' | b')' | b'>' => {
                if depth == 1 && bytes[i] == b'}' {
                    return Some(variants);
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            b',' if depth == 1 => {
                expect_name = true;
                i += 1;
            }
            b if depth == 1 && expect_name && b.is_ascii_uppercase() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                variants.push((masked.line_of(start), masked.code[start..i].to_string()));
                expect_name = false;
            }
            _ => i += 1,
        }
    }
    Some(variants)
}

/// R6: the cache's mutating methods must call the paranoid audit hook,
/// and `check_invariants` must exist — the static half of the dynamic
/// invariant layer.
#[must_use]
pub fn check_paranoid_wiring(rel: &Path, cache_src: &str) -> Vec<Finding> {
    let masked = mask(cache_src);
    let mut findings = Vec::new();
    if find_word(&masked.code, "fn check_invariants", 0).is_none() {
        findings.push(Finding {
            file: rel.to_path_buf(),
            line: 1,
            rule: Rule::ParanoidWiring,
            message: "Cache::check_invariants is not defined: the paranoid runtime \
                      audit layer is missing"
                .to_string(),
        });
        return findings;
    }
    for method in ["lookup", "serve_remote", "insert", "remove"] {
        let Some((line, body)) = fn_body(&masked, method) else {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line: 1,
                rule: Rule::ParanoidWiring,
                message: format!("expected mutating method `fn {method}` not found"),
            });
            continue;
        };
        if !(body.contains("audit(") || body.contains("check_invariants(")) {
            if masked.allowed(Rule::ParanoidWiring.name(), line) {
                continue;
            }
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: Rule::ParanoidWiring,
                message: format!(
                    "mutating method `{method}` does not call the invariant audit \
                     (`self.audit()`): paranoid builds would not check this path"
                ),
            });
        }
    }
    findings
}

/// The body text of `fn <name>` in non-test code, with its starting line.
fn fn_body<'a>(masked: &'a Masked, name: &str) -> Option<(usize, &'a str)> {
    // find_word word-bounds the name, so `fn lookup` never matches
    // `fn lookup_inner`.
    let pat = format!("fn {name}");
    let pos = find_word(&masked.app_code, &pat, 0)?;
    let bytes = masked.app_code.as_bytes();
    let open = masked.app_code[pos..].find('{')? + pos;
    let mut depth = 0usize;
    for (k, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((masked.line_of(pos), &masked.app_code[open..=k]));
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(path: &str, src: &str) -> Vec<Finding> {
        lint_source(Path::new(path), src)
    }

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn wall_clock_flagged_outside_clock_file() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(
            rules(&lint("crates/net/src/daemon.rs", src)),
            vec![Rule::WallClock]
        );
        assert!(lint("crates/net/src/clock.rs", src).is_empty());
    }

    #[test]
    fn panic_rule_scopes_to_library_crates() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert_eq!(rules(&lint("crates/core/src/x.rs", src)), vec![Rule::Panic]);
        assert_eq!(rules(&lint("crates/net/src/x.rs", src)), vec![Rule::Panic]);
        assert!(lint("crates/cli/src/x.rs", src).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or_else(|| 0) }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn map_iter_detects_field_iteration() {
        let src = "struct C { entries: HashMap<u64, u64> }\n\
                   impl C { fn f(&self) { for v in self.entries.values() { let _ = v; } } }\n";
        assert_eq!(
            rules(&lint("crates/core/src/x.rs", src)),
            vec![Rule::MapIter]
        );
    }

    #[test]
    fn unordered_iter_escaping_unsorted_is_flagged() {
        let src = "impl Shard { fn all(&self) -> Vec<u64> {\n\
                   let out: Vec<u64> = self.entries.iter_unordered().collect();\n\
                   out } }\n";
        assert_eq!(
            rules(&lint("crates/core/src/x.rs", src)),
            vec![Rule::MapIter]
        );
    }

    #[test]
    fn unordered_iter_sorted_shard_loop_is_clean() {
        let src = "impl Shard { fn all(&self) -> Vec<u64> {\n\
                   let mut out: Vec<u64> = self.entries.iter_unordered().collect();\n\
                   out.sort_unstable();\n\
                   out } }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unordered_iter_definition_site_is_not_flagged() {
        let src = "impl Slab { fn iter_unordered(&self) -> std::slice::Iter<'_, u64> {\n\
                   self.slots.iter() } }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn unordered_iter_sort_on_other_binding_still_flagged() {
        let src = "impl Shard { fn all(&self) -> Vec<u64> {\n\
                   let out: Vec<u64> = self.entries.iter_unordered().collect();\n\
                   let mut other: Vec<u64> = Vec::new();\n\
                   other.sort_unstable();\n\
                   out } }\n";
        assert_eq!(
            rules(&lint("crates/core/src/x.rs", src)),
            vec![Rule::MapIter]
        );
    }

    #[test]
    fn unordered_iter_only_in_deterministic_crates() {
        let src = "fn f(s: &Slab) -> Vec<u64> { s.iter_unordered().collect() }\n";
        assert_eq!(
            rules(&lint("crates/core/src/x.rs", src)),
            vec![Rule::MapIter]
        );
        assert!(lint("crates/metrics/src/x.rs", src).is_empty());
    }

    #[test]
    fn map_iter_allows_btreemap() {
        let src = "struct C { entries: BTreeMap<u64, u64> }\n\
                   impl C { fn f(&self) { for v in self.entries.values() { let _ = v; } } }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn map_get_is_fine() {
        let src = "fn f(m: HashMap<u64, u64>) -> Option<u64> { m.get(&1).copied() }\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn for_loop_over_map_is_flagged() {
        let src = "fn f(m: HashMap<u64, u64>) { for (k, v) in &m { let _ = (k, v); } }\n";
        assert_eq!(
            rules(&lint("crates/sim/src/x.rs", src)),
            vec![Rule::MapIter]
        );
    }

    #[test]
    fn float_eq_flagged() {
        let src = "fn f(x: f64) -> bool { x == 1.0 }\n";
        assert_eq!(
            rules(&lint("crates/cli/src/x.rs", src)),
            vec![Rule::FloatEq]
        );
        let src = "fn f(x: f64) -> bool { 0.5 != x }\n";
        assert_eq!(
            rules(&lint("crates/cli/src/x.rs", src)),
            vec![Rule::FloatEq]
        );
    }

    #[test]
    fn integer_eq_is_fine() {
        let src = "fn f(x: u64) -> bool { x == 10 && x != 3 }\n";
        assert!(lint("crates/cli/src/x.rs", src).is_empty());
    }

    #[test]
    fn float_comparisons_lt_ge_are_fine() {
        let src = "fn f(x: f64) -> bool { x <= 1.0 || x >= 2.0 }\n";
        assert!(lint("crates/cli/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_with_justification_suppresses() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(panic) -- contract\n    x.unwrap()\n}\n";
        assert!(lint("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_justification_is_its_own_finding() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    // lint:allow(panic)\n    x.unwrap()\n}\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(rules(&f), vec![Rule::BadAllow, Rule::Panic]);
    }

    #[test]
    fn allow_unknown_rule_is_flagged() {
        let src = "// lint:allow(no-such-rule) -- whatever\nfn f() {}\n";
        let f = lint("crates/core/src/x.rs", src);
        assert_eq!(rules(&f), vec![Rule::BadAllow]);
    }

    #[test]
    fn event_taxonomy_detects_dead_variant() {
        let event_src = "pub enum Event {\n    Used { a: u64 },\n    Dead { b: u64 },\n}\n";
        let user = (
            PathBuf::from("crates/sim/src/runner.rs"),
            "fn f() { let _ = Event::Used { a: 1 }; }\n".to_string(),
        );
        let f = check_event_taxonomy(Path::new("crates/obs/src/event.rs"), event_src, &[user]);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Event::Dead"));
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn match_arm_does_not_count_as_construction() {
        let event_src = "pub enum Event {\n    OnlyMatched { a: u64 },\n}\n";
        let user = (
            PathBuf::from("crates/sim/src/runner.rs"),
            "fn f(e: &Event) { match e { Event::OnlyMatched { .. } => {} } }\n".to_string(),
        );
        // `Event::OnlyMatched { .. }` in a match arm still starts with `{`,
        // so pattern-position appearances do count as wiring here; the
        // distinction we enforce is *absence anywhere*.
        let f = check_event_taxonomy(Path::new("crates/obs/src/event.rs"), event_src, &[user]);
        assert!(f.is_empty());
    }

    #[test]
    fn paranoid_wiring_requires_audit_calls() {
        let good = "impl Cache {\n\
            fn check_invariants(&self) {}\n\
            fn audit(&self) {}\n\
            pub fn lookup(&mut self) { self.audit(); }\n\
            pub fn serve_remote(&mut self) { self.audit(); }\n\
            pub fn insert(&mut self) { self.audit(); }\n\
            pub fn remove(&mut self) { self.audit(); }\n\
        }\n";
        assert!(check_paranoid_wiring(Path::new("crates/core/src/cache.rs"), good).is_empty());
        let bad = good.replace(
            "pub fn insert(&mut self) { self.audit(); }",
            "pub fn insert(&mut self) {}",
        );
        let f = check_paranoid_wiring(Path::new("crates/core/src/cache.rs"), &bad);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("insert"));
    }

    #[test]
    fn crate_classification() {
        assert_eq!(
            crate_of(Path::new("crates/core/src/cache.rs")),
            Some("core")
        );
        assert_eq!(crate_of(Path::new("src/lib.rs")), None);
    }
}
