//! A string/comment/`cfg(test)`-aware masking lexer for Rust sources.
//!
//! The linter never parses Rust properly (no `syn` — the registry is
//! unreachable from this environment); instead it *masks* everything a
//! textual rule must not look inside: string and char literal contents,
//! line and block comments, and — one level up — whole `#[cfg(test)]` /
//! `#[test]` items. Rules then scan the masked text with plain substring
//! and token-boundary checks, which keeps every rule a few lines long and
//! trivially auditable.
//!
//! Masking replaces bytes with spaces while preserving newlines, so byte
//! offsets and line numbers in the masked text match the original file
//! exactly.

/// An allow directive found in a comment: a rule name plus a `--`
/// justification, e.g. `// lint:allow(panic) -- contract violation`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowDirective {
    /// 1-based line the directive's comment starts on.
    pub line: usize,
    /// The line the directive suppresses: its own line for a trailing
    /// comment, otherwise the next line holding actual code (comment
    /// continuation lines in between are skipped).
    pub applies_to: usize,
    /// The rule name inside the parentheses, verbatim.
    pub rule: String,
    /// Whether a non-empty ` -- justification` followed the directive.
    pub justified: bool,
}

/// The result of masking one source file.
#[derive(Debug, Clone)]
pub struct Masked {
    /// The source with comment and literal contents blanked to spaces
    /// (newlines preserved). Same byte length as the input.
    pub code: String,
    /// Additionally blanks every `#[cfg(test)]` / `#[test]` item, so rules
    /// that exempt test code scan this instead of [`Masked::code`].
    pub app_code: String,
    /// Every `lint:allow` directive, in file order.
    pub allows: Vec<AllowDirective>,
    /// Byte offset of the start of each line (index 0 = line 1).
    line_starts: Vec<usize>,
}

impl Masked {
    /// 1-based line number containing byte `offset`.
    #[must_use]
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// True when an allow directive for `rule` covers `line` — the
    /// directive suppresses findings on its own line (trailing comment)
    /// and on the next code line below it (comment-above style, with the
    /// comment free to span several lines). Only justified directives
    /// suppress anything.
    #[must_use]
    pub fn allowed(&self, rule: &str, line: usize) -> bool {
        self.allows
            .iter()
            .any(|a| a.justified && a.rule == rule && (a.line == line || a.applies_to == line))
    }
}

/// Masks `src`: blanks comments and literal contents, records allow
/// directives, and blanks test-only items in the `app_code` view.
#[must_use]
pub fn mask(src: &str) -> Masked {
    let bytes = src.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut allows = Vec::new();
    let mut line_starts = vec![0usize];
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            line_starts.push(i + 1);
        }
    }
    let line_of = |offset: usize| -> usize {
        match line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    };

    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                parse_allows(&src[start..i], line_of(start), &mut allows);
                blank(&mut out, i - start);
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                parse_allows(&src[start..i], line_of(start), &mut allows);
                blank_keep_newlines(&mut out, &bytes[start..i]);
            }
            b'"' => {
                out.push(b'"');
                i += 1;
                i = skip_string(bytes, i, &mut out);
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let (next, consumed) = skip_raw_string(bytes, i);
                blank_keep_newlines(&mut out, &bytes[i..i + consumed]);
                i = next;
            }
            b'b' if bytes.get(i + 1) == Some(&b'"') => {
                out.push(b' ');
                out.push(b'"');
                i += 2;
                i = skip_string(bytes, i, &mut out);
            }
            b'\'' => {
                // Char literal or lifetime. `'a` followed by a non-quote is
                // a lifetime; `'a'` or `'\n'` is a char literal.
                if bytes.get(i + 1) == Some(&b'\\') {
                    let start = i;
                    i += 2; // quote + backslash
                    if i < bytes.len() {
                        i += 1; // the escaped char
                    }
                    // Consume up to the closing quote (covers \u{...}).
                    while i < bytes.len() && bytes[i] != b'\'' {
                        i += 1;
                    }
                    i += 1;
                    blank(&mut out, i.min(bytes.len()) - start);
                } else if bytes.get(i + 2) == Some(&b'\'') && bytes.get(i + 1) != Some(&b'\'') {
                    blank(&mut out, 3);
                    i += 3;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            _ => {
                out.push(b);
                i += 1;
            }
        }
    }
    out.truncate(bytes.len());
    let code = String::from_utf8_lossy(&out).into_owned();
    // Resolve each directive to the line it suppresses: its own line when
    // that line still holds code after masking (trailing comment), else
    // the next line with any code (skipping comment continuation lines,
    // which mask to whitespace).
    let line_text = |n: usize| -> &str {
        let start = line_starts[n - 1];
        let end = line_starts.get(n).copied().unwrap_or(code.len());
        &code[start..end]
    };
    for a in &mut allows {
        let mut target = a.line;
        while target < line_starts.len() && line_text(target).trim().is_empty() {
            target += 1;
        }
        a.applies_to = target;
    }
    let app_code = blank_test_items(&code);
    Masked {
        code,
        app_code,
        allows,
        line_starts,
    }
}

/// Pushes `n` spaces.
fn blank(out: &mut Vec<u8>, n: usize) {
    out.extend(std::iter::repeat_n(b' ', n));
}

/// Pushes one space per byte, preserving newlines.
fn blank_keep_newlines(out: &mut Vec<u8>, span: &[u8]) {
    out.extend(span.iter().map(|&b| if b == b'\n' { b'\n' } else { b' ' }));
}

/// After an opening `"` (already emitted), blanks the string body and
/// emits the closing quote. Returns the index after the literal.
fn skip_string(bytes: &[u8], mut i: usize, out: &mut Vec<u8>) -> usize {
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => {
                blank(out, 2.min(bytes.len() - i));
                i += 2;
            }
            b'"' => {
                out.push(b'"');
                return i + 1;
            }
            b'\n' => {
                out.push(b'\n');
                i += 1;
            }
            _ => {
                out.push(b' ');
                i += 1;
            }
        }
    }
    i
}

/// True when position `i` starts a raw (byte) string: `r"`, `r#`, `br"`,
/// `br#`.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // Avoid treating identifiers ending in r/b (e.g. `var"`) as raw
    // strings: the char before must not be part of an identifier.
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let rest = &bytes[i..];
    let after_prefix = if rest.starts_with(b"br") || rest.starts_with(b"rb") {
        &rest[2..]
    } else if rest.starts_with(b"r") {
        &rest[1..]
    } else {
        return false;
    };
    let hashes = after_prefix.iter().take_while(|&&b| b == b'#').count();
    after_prefix.get(hashes) == Some(&b'"')
}

/// Skips a raw string starting at `i`; returns `(next_index, consumed)`.
fn skip_raw_string(bytes: &[u8], i: usize) -> (usize, usize) {
    let rest = &bytes[i..];
    let prefix = if rest.starts_with(b"br") || rest.starts_with(b"rb") {
        2
    } else {
        1
    };
    let hashes = rest[prefix..].iter().take_while(|&&b| b == b'#').count();
    let mut j = i + prefix + hashes + 1; // past the opening quote
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while j < bytes.len() {
        if bytes[j..].starts_with(&closer) {
            j += closer.len();
            return (j, j - i);
        }
        j += 1;
    }
    (j, j - i)
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Extracts every allow directive from one comment.
fn parse_allows(comment: &str, line: usize, allows: &mut Vec<AllowDirective>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        let after = &rest[pos + "lint:allow(".len()..];
        let Some(close) = after.find(')') else { break };
        let rule = after[..close].trim().to_string();
        let tail = &after[close + 1..];
        let justified = tail
            .trim_start()
            .strip_prefix("--")
            .is_some_and(|j| !j.trim().is_empty());
        allows.push(AllowDirective {
            line,
            applies_to: line, // resolved after the whole file is masked
            rule,
            justified,
        });
        rest = tail;
    }
}

/// Blanks every item gated on test-only compilation: `#[cfg(test)] mod/fn
/// ... { ... }` (or `...;`) and `#[test] fn ... { ... }`.
fn blank_test_items(code: &str) -> String {
    let bytes = code.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'#' {
            i += 1;
            continue;
        }
        let Some((attr_text, attr_end)) = read_attribute(code, i) else {
            i += 1;
            continue;
        };
        if !is_test_attr(&attr_text) {
            i = attr_end;
            continue;
        }
        let item_end = find_item_end(bytes, attr_end);
        for b in &mut out[i..item_end] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        i = item_end;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Finds the end of the item following an attribute: past any further
/// attributes, then either the terminating `;` or the matching close of
/// the item's first `{` block.
fn find_item_end(bytes: &[u8], mut i: usize) -> usize {
    // Skip whitespace and any further attributes.
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if bytes.get(i) == Some(&b'#') {
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            if bytes.get(j) == Some(&b'[') {
                let mut depth = 0usize;
                while j < bytes.len() {
                    match bytes[j] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j + 1;
                continue;
            }
        }
        break;
    }
    // Scan to the item boundary.
    let mut depth = 0usize;
    while i < bytes.len() {
        match bytes[i] {
            b';' if depth == 0 => return i + 1,
            b'{' => depth += 1,
            b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Reads an attribute `#[...]` (brackets may nest) starting at `start`.
/// Returns the attribute text without whitespace and the index just past
/// the closing bracket.
fn read_attribute(code: &str, start: usize) -> Option<(String, usize)> {
    let bytes = code.as_bytes();
    let mut j = start + 1;
    while j < bytes.len() && bytes[j].is_ascii_whitespace() {
        j += 1;
    }
    if bytes.get(j) != Some(&b'[') {
        return None;
    }
    let mut depth = 0usize;
    let mut text = String::new();
    for (k, &b) in bytes.iter().enumerate().skip(j) {
        match b {
            b'[' => depth += 1,
            b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some((text, k + 1));
                }
            }
            _ => {
                if !b.is_ascii_whitespace() {
                    text.push(b as char);
                }
            }
        }
    }
    None
}

/// True for attributes that gate an item to test builds: `test`,
/// `cfg(test)`, `cfg(all(test, ...))` — but not `cfg(not(test))`.
fn is_test_attr(attr: &str) -> bool {
    if attr == "test" {
        return true;
    }
    if !attr.starts_with("cfg(") || attr.contains("not(") {
        return false;
    }
    contains_word(attr, "test")
}

/// True when `needle` occurs in `hay` with non-identifier chars (or the
/// text boundary) on both sides.
pub fn contains_word(hay: &str, needle: &str) -> bool {
    find_word(hay, needle, 0).is_some()
}

/// Finds the next word-bounded occurrence of `needle` at or after `from`.
pub fn find_word(hay: &str, needle: &str, from: usize) -> Option<usize> {
    let bytes = hay.as_bytes();
    let mut start = from;
    while let Some(rel) = hay.get(start..).and_then(|h| h.find(needle)) {
        let pos = start + rel;
        let left_ok = pos == 0 || !is_ident_byte(bytes[pos - 1]);
        let end = pos + needle.len();
        let right_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if left_ok && right_ok {
            return Some(pos);
        }
        start = pos + 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let m = mask("let a = \"Instant::now\"; // Instant::now\nlet b = 1;");
        assert!(!m.code.contains("Instant::now"));
        assert!(m.code.contains("let a ="));
        assert!(m.code.contains("let b = 1;"));
        assert_eq!(
            m.code.len(),
            "let a = \"Instant::now\"; // Instant::now\nlet b = 1;".len()
        );
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = mask(r##"let a = r#"panic!("boom")"#; let b = 2;"##);
        assert!(!m.code.contains("panic!"));
        assert!(m.code.contains("let b = 2;"));
    }

    #[test]
    fn lifetimes_survive_char_literals_do_not() {
        let m = mask("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(m.code.contains("<'a>"));
        assert!(m.code.contains("&'a str"));
        assert!(!m.code.contains("'x'"));
    }

    #[test]
    fn block_comments_nest() {
        let m = mask("/* outer /* inner */ still comment */ let x = 1;");
        assert!(m.code.contains("let x = 1;"));
        assert!(!m.code.contains("outer"));
    }

    #[test]
    fn cfg_test_mod_is_blanked_in_app_code() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap() }\n}\n";
        let m = mask(src);
        assert!(m.code.contains("unwrap"), "plain mask keeps test code");
        assert!(!m.app_code.contains("unwrap"), "app view drops test code");
        assert!(m.app_code.contains("fn real()"));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let src = "#[cfg(not(test))]\nfn real() { x.unwrap() }\n";
        let m = mask(src);
        assert!(m.app_code.contains("unwrap"));
    }

    #[test]
    fn test_fn_attr_is_blanked() {
        let src = "#[test]\nfn t() { x.unwrap(); }\nfn real() {}\n";
        let m = mask(src);
        assert!(!m.app_code.contains("unwrap"));
        assert!(m.app_code.contains("fn real()"));
    }

    #[test]
    fn allow_directive_parsing() {
        let src = "// lint:allow(panic) -- contract\nx();\n// lint:allow(panic)\ny();\n";
        let m = mask(src);
        assert_eq!(m.allows.len(), 2);
        assert!(m.allows[0].justified);
        assert!(!m.allows[1].justified);
        assert!(m.allowed("panic", 1));
        assert!(m.allowed("panic", 2));
        assert!(!m.allowed("panic", 4), "unjustified allow never suppresses");
    }

    #[test]
    fn allow_comment_may_span_lines() {
        let src = "// lint:allow(panic) -- a justification that\n// wraps onto a second line\nx();\ny();\n";
        let m = mask(src);
        assert!(m.allowed("panic", 3), "skips comment continuation lines");
        assert!(!m.allowed("panic", 4), "covers only the next code line");
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let src = "x(); // lint:allow(panic) -- contract\ny();\n";
        let m = mask(src);
        assert!(m.allowed("panic", 1));
        assert!(!m.allowed("panic", 2));
    }

    #[test]
    fn line_numbers_match_offsets() {
        let m = mask("a\nb\nc\n");
        assert_eq!(m.line_of(0), 1);
        assert_eq!(m.line_of(2), 2);
        assert_eq!(m.line_of(4), 3);
    }

    #[test]
    fn word_boundaries() {
        assert!(contains_word("cfg(test)", "test"));
        assert!(!contains_word("cfg(testing)", "test"));
        assert!(contains_word("a test b", "test"));
    }
}
