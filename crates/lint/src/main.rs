#![forbid(unsafe_code)]
//! CLI for the workspace conformance linter.
//!
//! ```sh
//! cargo run -p coopcache-lint                  # lint the enclosing workspace
//! cargo run -p coopcache-lint -- --concurrency # concurrency rules only
//! cargo run -p coopcache-lint -- --root /path/to/repo
//! ```
//!
//! Exit status: 0 when clean, 1 with `file:line: [rule] message`
//! diagnostics otherwise, 2 on usage or I/O errors.

use std::path::PathBuf;

fn usage() -> ! {
    eprintln!("usage: coopcache-lint [--root <workspace-dir>] [--concurrency]");
    std::process::exit(2);
}

/// The nearest ancestor of `start` whose `Cargo.toml` declares a
/// `[workspace]`.
fn find_workspace_root(start: PathBuf) -> Option<PathBuf> {
    let mut dir = start;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut concurrency_only = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--concurrency" => concurrency_only = true,
            "--help" | "-h" => {
                println!("coopcache-lint: workspace conformance linter");
                println!();
                println!("usage: coopcache-lint [--root <workspace-dir>] [--concurrency]");
                println!();
                println!("rules: wall-clock, panic, map-iter, float-eq, dead-event,");
                println!("       paranoid-wiring (see DESIGN.md §8); with --concurrency,");
                println!("       only lock-blocking, lock-order, atomic-order, guard-await,");
                println!("       unsafe (see DESIGN.md §13)");
                return;
            }
            _ => usage(),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot read current dir: {e}");
                    std::process::exit(2);
                }
            };
            match find_workspace_root(cwd) {
                Some(r) => r,
                None => {
                    eprintln!("error: no enclosing workspace found; pass --root");
                    std::process::exit(2);
                }
            }
        }
    };
    let filtered = coopcache_lint::lint_workspace(&root).map(|mut findings| {
        if concurrency_only {
            findings.retain(|f| f.rule.is_concurrency());
        }
        findings
    });
    match filtered {
        Ok(findings) if findings.is_empty() => {
            let n = coopcache_lint::count_files(&root).unwrap_or(0);
            let scope = if concurrency_only {
                " (concurrency rules)"
            } else {
                ""
            };
            println!("coopcache-lint: clean ({n} files){scope}");
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("coopcache-lint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
