//! Clean fixture: the stop flag uses a documented Release/Acquire pair,
//! and the pure counter stays `Relaxed`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct Flags {
    stop: AtomicBool,
    count: AtomicU64,
}

impl Flags {
    fn request_stop(&self) {
        // lint:allow(atomic-order) -- Release: pairs with the Acquire
        // load in `is_stopped`.
        self.stop.store(true, Ordering::Release);
    }

    fn is_stopped(&self) -> bool {
        // lint:allow(atomic-order) -- Acquire: pairs with the Release
        // store in `request_stop`.
        self.stop.load(Ordering::Acquire)
    }

    fn bump(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}
