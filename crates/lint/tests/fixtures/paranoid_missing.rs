//! Fixture: R6 — no invariant layer at all.

pub struct Cache;

impl Cache {
    pub fn lookup(&mut self) {}
}
