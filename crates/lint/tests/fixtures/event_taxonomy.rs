//! Fixture: R5 — an event taxonomy with one variant nothing constructs.

/// Emitted by simulation drivers.
pub enum Event {
    /// A run began.
    Started { at_ms: u64 },
    /// One simulated step elapsed.
    Tick(u64),
    /// Declared but never built anywhere: dead taxonomy.
    NeverBuilt { reason: u8 },
}
