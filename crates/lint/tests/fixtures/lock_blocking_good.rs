//! Clean fixture: the same shutdown and sampling shapes as
//! `lock_blocking_bad.rs`, with every guard dropped before blocking.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Daemon {
    sink: Mutex<Vec<u64>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn shutdown_cleanly(&mut self) {
        {
            let guard = lock(&self.sink);
            let _ = guard.len();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    fn sleep_after_read(&self) {
        let first = lock(&self.sink).first().copied();
        if let Some(ms) = first {
            std::thread::sleep(Duration::from_millis(ms));
        }
    }
}
