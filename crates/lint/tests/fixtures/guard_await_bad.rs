//! Deliberately violating fixture: a guard held across an `.await`
//! suspension point, and a guard captured by a `move` closure.

use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Shared {
    queue: Mutex<Vec<u64>>,
}

impl Shared {
    async fn drain_holding_guard(&self) {
        let queue = lock(&self.queue);
        tick().await;
        let _ = queue.len();
    }

    fn escape_into_callback(&self) -> impl FnOnce() -> usize + '_ {
        let queue = lock(&self.queue);
        move || queue.len()
    }
}

async fn tick() {}
