//! Fixture: R3 non-violations — ordered collections, point access, test
//! code, and the justified escape hatch.

use std::collections::{BTreeMap, HashMap};

pub fn ordered(counts: BTreeMap<u64, u64>) -> Vec<u64> {
    counts.values().copied().collect()
}

pub fn point_access(index: HashMap<u64, u64>, key: u64) -> Option<u64> {
    index.get(&key).copied()
}

pub fn sanctioned(scratch: HashMap<u64, u64>) -> u64 {
    // lint:allow(map-iter) -- order folds through a commutative sum
    scratch.values().sum()
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn iteration_inside_tests_is_fine() {
        let m: HashMap<u64, u64> = HashMap::new();
        for (_k, _v) in m.iter() {}
    }
}

pub struct Shard {
    slots: Vec<u64>,
}

impl Shard {
    pub fn iter_unordered(&self) -> std::slice::Iter<'_, u64> {
        self.slots.iter()
    }

    /// The ordered shard loop: collect, then sort before escaping.
    pub fn sorted_entries(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.iter_unordered().copied().collect();
        out.sort_unstable();
        out
    }

    pub fn checksum(&self) -> u64 {
        // lint:allow(map-iter) -- order folds through a commutative sum
        self.iter_unordered().sum()
    }
}
