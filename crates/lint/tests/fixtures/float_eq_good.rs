//! Fixture: R4 non-violations — integer equality, epsilon comparisons,
//! orderings, match arms, strings, and the justified escape hatch.

pub fn integers(x: u64) -> bool {
    x == 10
}

pub fn epsilon(x: f64) -> bool {
    (x - 1.0).abs() < 1e-9
}

pub fn ordering(x: f64) -> bool {
    x <= 1.0 && x >= 0.0
}

pub fn match_arms(x: u8) -> u64 {
    match x {
        0 => 10,
        _ => 20,
    }
}

pub fn strings_do_not_count() -> &'static str {
    "x == 1.0"
}

pub fn sanctioned(x: f64) -> bool {
    // lint:allow(float-eq) -- fixture: exact sentinel comparison
    x == 0.0
}
