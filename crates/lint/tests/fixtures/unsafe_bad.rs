//! Deliberately violating fixture: one bare `unsafe` block (flagged)
//! and one with a justified allow (accepted). Linted under a crate-root
//! pseudo path, the missing `#![forbid(unsafe_code)]` is a second
//! finding.

fn first_byte_bare(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}

fn first_byte_justified(v: &[u8]) -> u8 {
    // lint:allow(unsafe) -- fixture: caller guarantees `v` is non-empty,
    // so the read is in bounds.
    unsafe { *v.as_ptr() }
}
