//! Fixture: R3 violations — hash-order iteration where order can leak.

use std::collections::{HashMap, HashSet};

pub fn leaky(counts: HashMap<u64, u64>) -> Vec<u64> {
    counts.values().copied().collect()
}

pub fn looped() {
    let seen: HashSet<u64> = HashSet::new();
    for s in &seen {
        let _ = s;
    }
}

pub struct State {
    pending: HashMap<u64, u64>,
}

impl State {
    pub fn drain_all(&mut self) -> Vec<(u64, u64)> {
        self.pending.drain().collect()
    }
}

pub struct Arena {
    slots: Vec<u64>,
}

impl Arena {
    pub fn iter_unordered(&self) -> std::slice::Iter<'_, u64> {
        self.slots.iter()
    }

    pub fn escapes_allocation_order(&self) -> Vec<u64> {
        self.iter_unordered().copied().collect()
    }

    pub fn walks_allocation_order(&self) {
        for v in self.iter_unordered() {
            let _ = v;
        }
    }
}
