//! Fixture: R3 violations — hash-order iteration where order can leak.

use std::collections::{HashMap, HashSet};

pub fn leaky(counts: HashMap<u64, u64>) -> Vec<u64> {
    counts.values().copied().collect()
}

pub fn looped() {
    let seen: HashSet<u64> = HashSet::new();
    for s in &seen {
        let _ = s;
    }
}

pub struct State {
    pending: HashMap<u64, u64>,
}

impl State {
    pub fn drain_all(&mut self) -> Vec<(u64, u64)> {
        self.pending.drain().collect()
    }
}
