//! Deliberately violating fixture: `Relaxed` on a cross-thread
//! `AtomicBool` handoff flag, and an undocumented `SeqCst` on a counter.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

struct Flags {
    stop: AtomicBool,
    count: AtomicU64,
}

impl Flags {
    fn request_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn bump(&self) {
        self.count.fetch_add(1, Ordering::SeqCst);
    }

    fn read(&self) -> u64 {
        // A pure counter: Relaxed is the correct, unflagged choice.
        self.count.load(Ordering::Relaxed)
    }
}
