//! Clean fixture: the same shapes as `guard_await_bad.rs`, with the
//! guard scoped to end before the suspension point and the closure
//! capturing plain data instead of the guard.

use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Shared {
    queue: Mutex<Vec<u64>>,
}

impl Shared {
    async fn drain_scoped(&self) {
        let len = {
            let queue = lock(&self.queue);
            queue.len()
        };
        tick().await;
        let _ = len;
    }

    fn callback_without_guard(&self) -> impl FnOnce() -> usize {
        let len = lock(&self.queue).len();
        move || len
    }
}

async fn tick() {}
