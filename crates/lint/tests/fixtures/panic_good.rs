//! Fixture: R2 non-violations — doc-comment and string mentions, test
//! code, and a justified multi-line allow.

/// Doc comments may mention `.unwrap()` and `panic!(...)` freely.
pub fn justified(x: Option<u8>) -> u8 {
    // lint:allow(panic) -- fixture: documented caller contract, and this
    // justification deliberately wraps onto a second comment line.
    x.expect("checked by caller")
}

pub fn strings_do_not_count() -> &'static str {
    "call .unwrap() or panic!(later)"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = Some(1u8).unwrap();
        assert_eq!(v, 1);
    }
}
