//! Deliberately violating fixture: blocking calls under a live guard —
//! the exact shape of the PR 5 shutdown deadlock.

use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Daemon {
    sink: Mutex<Vec<u64>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    fn shutdown_holding_sink(&mut self) {
        let guard = lock(&self.sink);
        for handle in self.threads.drain(..) {
            let _ = handle.join(); // joins emitters that need `sink`
        }
        drop(guard);
    }

    fn sleep_under_scrutinee(&self) {
        if let Some(first) = lock(&self.sink).first() {
            std::thread::sleep(Duration::from_millis(*first));
        }
    }
}
