//! Deliberately violating fixture: two paths acquire `health` and
//! `series` in opposite orders (a cycle in the acquisition graph), and a
//! third re-acquires a lock under its own guard.

use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Planes {
    health: Mutex<u64>,
    series: Mutex<u64>,
}

impl Planes {
    fn forward(&self) -> u64 {
        let health = lock(&self.health);
        let series = lock(&self.series);
        *health + *series
    }

    fn backward(&self) -> u64 {
        let series = lock(&self.series);
        let health = lock(&self.health);
        *series - *health
    }

    fn reentrant(&self) -> u64 {
        let outer = lock(&self.health);
        let inner = lock(&self.health);
        *outer + *inner
    }
}
