#![forbid(unsafe_code)]
//! Clean fixture: a crate root that forbids unsafe outright.

pub fn first_byte(v: &[u8]) -> Option<u8> {
    v.first().copied()
}
