//! Fixture: R1 non-violations — strings, comments, test code, and the
//! justified escape hatch.

pub fn describe() -> &'static str {
    // A comment mentioning Instant::now is not a clock read.
    "this string mentions Instant::now and SystemTime::now"
}

pub fn sanctioned() -> u64 {
    // lint:allow(wall-clock) -- fixture exercising the escape hatch
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_inside_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
