//! Fixture: R1 violations — wall-clock reads outside the clock module.

pub fn latency_us() -> u64 {
    let t0 = std::time::Instant::now();
    t0.elapsed().as_micros() as u64
}

pub fn since_epoch() -> std::time::SystemTime {
    std::time::SystemTime::now()
}
