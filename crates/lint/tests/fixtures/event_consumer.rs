//! Fixture: a driver constructing two of the three taxonomy variants.

pub fn emit() {
    let _started = Event::Started { at_ms: 0 };
    let _tick = Event::Tick(7);
}
