//! Fixture: R4 violations — exact float comparisons.

pub fn direct(x: f64) -> bool {
    x == 1.0
}

pub fn reversed(x: f64) -> bool {
    2.5f64 != x
}

pub fn scientific(x: f64) -> bool {
    x == 1e-3
}

pub fn trailing_dot(x: f64) -> bool {
    x != 3.
}
