//! Clean fixture: every path acquires `health` strictly before
//! `series`, so the acquisition graph is acyclic.

use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Planes {
    health: Mutex<u64>,
    series: Mutex<u64>,
}

impl Planes {
    fn sum(&self) -> u64 {
        let health = lock(&self.health);
        let series = lock(&self.series);
        *health + *series
    }

    fn diff(&self) -> u64 {
        let health = lock(&self.health);
        let series = lock(&self.series);
        *health - *series
    }

    fn sequential(&self) -> u64 {
        let h = *lock(&self.health);
        let s = *lock(&self.series);
        h + s
    }
}
