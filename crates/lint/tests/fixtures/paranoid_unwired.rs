//! Fixture: R6 — the invariant layer exists but two mutating methods
//! skip the audit hook.

pub struct Cache;

impl Cache {
    pub fn check_invariants(&self) -> Result<(), ()> {
        Ok(())
    }

    fn audit(&self) {}

    pub fn lookup(&mut self) {
        self.audit();
    }

    pub fn serve_remote(&mut self) {
        self.audit();
    }

    pub fn insert(&mut self) {}

    pub fn remove(&mut self) {}
}
