//! Fixture: R2 violations — panicking constructs in library code, plus
//! malformed allow directives.

pub fn first(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn second(x: Option<u8>) -> u8 {
    x.expect("present")
}

pub fn third() {
    panic!("boom");
}

pub fn fourth() {
    unreachable!("never");
}

pub fn unjustified(x: Option<u8>) -> u8 {
    // lint:allow(panic)
    x.unwrap()
}

pub fn unknown_rule(x: Option<u8>) -> u8 {
    // lint:allow(no-such-rule) -- names a rule that does not exist
    x.unwrap()
}
