//! Fixture-driven integration tests for the conformance rules.
//!
//! Each file under `fixtures/` is a deliberately-violating (or
//! deliberately-clean) source. It is scanned under a *pseudo* workspace
//! path — `crates/<name>/src/fixture.rs` — so crate-scoped rules apply
//! exactly as they would in the real tree. The fixtures directory itself
//! is in the linter's skip list, so the workspace scan never sees them.

use coopcache_lint::{
    check_event_taxonomy, check_lock_order, check_paranoid_wiring, lint_source, Finding, Rule,
};
use std::path::{Path, PathBuf};

fn lint(pseudo_path: &str, src: &str) -> Vec<Finding> {
    lint_source(Path::new(pseudo_path), src)
}

fn count(findings: &[Finding], rule: Rule) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

/// Asserts that every finding's reported line actually contains `token`
/// in the fixture source — the diagnostics must point at the offense.
fn lines_contain(findings: &[Finding], src: &str, rule: Rule, token: &str) {
    for f in findings.iter().filter(|f| f.rule == rule) {
        let text = src.lines().nth(f.line - 1).unwrap_or("");
        assert!(
            text.contains(token),
            "{f} points at line {}, which lacks `{token}`: {text:?}",
            f.line
        );
    }
}

#[test]
fn wall_clock_fixture_flags_both_reads() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    let findings = lint("crates/net/src/fixture.rs", src);
    assert_eq!(findings.len(), 2, "{findings:?}");
    assert_eq!(count(&findings, Rule::WallClock), 2);
    lines_contain(&findings, src, Rule::WallClock, "::now()");
}

#[test]
fn wall_clock_fixture_is_exempt_in_clock_file_and_benches() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    assert!(lint("crates/net/src/clock.rs", src).is_empty());
    assert!(lint("crates/net/benches/latency.rs", src).is_empty());
}

#[test]
fn wall_clock_clean_fixture_produces_nothing() {
    let src = include_str!("fixtures/wall_clock_good.rs");
    let findings = lint("crates/net/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn panic_fixture_flags_all_constructs_and_bad_allows() {
    let src = include_str!("fixtures/panic_bad.rs");
    let findings = lint("crates/core/src/fixture.rs", src);
    // unwrap/expect/panic!/unreachable! + the two unsuppressed unwraps
    // under malformed allows.
    assert_eq!(count(&findings, Rule::Panic), 6, "{findings:?}");
    // One unjustified allow, one naming an unknown rule.
    assert_eq!(count(&findings, Rule::BadAllow), 2, "{findings:?}");
}

#[test]
fn panic_rule_only_applies_to_library_crates() {
    let src = include_str!("fixtures/panic_bad.rs");
    let findings = lint("crates/cli/src/fixture.rs", src);
    // Allow validation is global; the panic rule is not.
    assert_eq!(count(&findings, Rule::Panic), 0, "{findings:?}");
    assert_eq!(count(&findings, Rule::BadAllow), 2);
}

#[test]
fn panic_clean_fixture_produces_nothing() {
    let src = include_str!("fixtures/panic_good.rs");
    let findings = lint("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn map_iter_fixture_flags_values_for_loop_and_drain() {
    let src = include_str!("fixtures/map_iter_bad.rs");
    let findings = lint("crates/sim/src/fixture.rs", src);
    // Three hash-order leaks plus two unsorted `iter_unordered` escapes.
    assert_eq!(count(&findings, Rule::MapIter), 5, "{findings:?}");
    lines_contain(&findings, src, Rule::MapIter, "");
}

#[test]
fn map_iter_rule_only_applies_to_deterministic_crates() {
    let src = include_str!("fixtures/map_iter_bad.rs");
    let findings = lint("crates/trace/src/fixture.rs", src);
    assert_eq!(count(&findings, Rule::MapIter), 0, "{findings:?}");
}

#[test]
fn map_iter_clean_fixture_produces_nothing() {
    let src = include_str!("fixtures/map_iter_good.rs");
    let findings = lint("crates/proxy/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn float_eq_fixture_flags_every_literal_comparison() {
    let src = include_str!("fixtures/float_eq_bad.rs");
    let findings = lint("crates/core/src/fixture.rs", src);
    assert_eq!(count(&findings, Rule::FloatEq), 4, "{findings:?}");
    assert_eq!(findings.len(), 4);
}

#[test]
fn float_eq_clean_fixture_produces_nothing() {
    let src = include_str!("fixtures/float_eq_good.rs");
    let findings = lint("crates/core/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn dead_event_fixture_flags_only_the_unconstructed_variant() {
    let taxonomy = include_str!("fixtures/event_taxonomy.rs");
    let consumer = include_str!("fixtures/event_consumer.rs");
    let others = vec![(
        PathBuf::from("crates/sim/src/driver.rs"),
        consumer.to_string(),
    )];
    let findings = check_event_taxonomy(Path::new("crates/obs/src/event.rs"), taxonomy, &others);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].rule, Rule::DeadEvent);
    assert!(
        findings[0].message.contains("NeverBuilt"),
        "{}",
        findings[0]
    );
    let text = taxonomy.lines().nth(findings[0].line - 1).unwrap_or("");
    assert!(text.contains("NeverBuilt"), "line points at the variant");
}

#[test]
fn dead_event_passes_when_every_variant_is_built() {
    let taxonomy = include_str!("fixtures/event_taxonomy.rs");
    let full = "pub fn all() { let _ = Event::Started { at_ms: 1 }; \
                let _ = Event::Tick(2); \
                let _ = Event::NeverBuilt { reason: 3 }; }";
    let others = vec![(PathBuf::from("crates/sim/src/x.rs"), full.to_string())];
    let findings = check_event_taxonomy(Path::new("crates/obs/src/event.rs"), taxonomy, &others);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn paranoid_wiring_flags_unaudited_mutators() {
    let src = include_str!("fixtures/paranoid_unwired.rs");
    let findings = check_paranoid_wiring(Path::new("crates/core/src/cache.rs"), src);
    assert_eq!(findings.len(), 2, "{findings:?}");
    let msgs: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("`insert`")), "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("`remove`")), "{msgs:?}");
}

#[test]
fn paranoid_wiring_flags_a_missing_invariant_layer() {
    let src = include_str!("fixtures/paranoid_missing.rs");
    let findings = check_paranoid_wiring(Path::new("crates/core/src/cache.rs"), src);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert!(findings[0].message.contains("check_invariants"));
}

#[test]
fn lock_blocking_fixture_flags_join_and_sleep() {
    let src = include_str!("fixtures/lock_blocking_bad.rs");
    let findings = lint("crates/net/src/fixture.rs", src);
    assert_eq!(count(&findings, Rule::LockBlocking), 2, "{findings:?}");
    assert_eq!(findings.len(), 2, "{findings:?}");
    lines_contain(&findings, src, Rule::LockBlocking, "(");
}

#[test]
fn lock_blocking_clean_fixture_produces_nothing() {
    let src = include_str!("fixtures/lock_blocking_good.rs");
    let findings = lint("crates/net/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lock_order_fixture_reports_the_cycle_and_the_reentry() {
    let src = include_str!("fixtures/lock_order_bad.rs");
    let sources = vec![(PathBuf::from("crates/net/src/fixture.rs"), src.to_string())];
    let findings = check_lock_order(&sources);
    assert_eq!(count(&findings, Rule::LockOrder), 2, "{findings:?}");
    assert!(
        findings.iter().any(|f| f.message.contains("cycle")
            && f.message.contains("health")
            && f.message.contains("series")),
        "{findings:?}"
    );
    assert!(
        findings.iter().any(|f| f.message.contains("re-acquired")),
        "{findings:?}"
    );
}

#[test]
fn lock_order_clean_fixture_produces_nothing() {
    let src = include_str!("fixtures/lock_order_good.rs");
    let sources = vec![(PathBuf::from("crates/net/src/fixture.rs"), src.to_string())];
    let findings = check_lock_order(&sources);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn lock_order_sees_cycles_spanning_files() {
    // `forward` and `backward` in different files still form one cycle:
    // the acquisition graph is workspace-wide.
    let src = include_str!("fixtures/lock_order_bad.rs");
    let (fwd, rest) = src.split_once("    fn backward").expect("fixture shape");
    let fwd = format!("{fwd}}}\n");
    let bwd = format!(
        "use std::sync::{{Mutex, MutexGuard, PoisonError}};\n\
         fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {{\n\
             m.lock().unwrap_or_else(PoisonError::into_inner)\n\
         }}\n\
         struct Planes {{ health: Mutex<u64>, series: Mutex<u64> }}\n\
         impl Planes {{\n    fn backward{}",
        rest.split_once("    fn reentrant")
            .expect("fixture shape")
            .0
    );
    let sources = vec![
        (PathBuf::from("crates/net/src/a.rs"), fwd),
        (PathBuf::from("crates/net/src/b.rs"), format!("{bwd}}}\n")),
    ];
    let findings = check_lock_order(&sources);
    assert_eq!(count(&findings, Rule::LockOrder), 1, "{findings:?}");
    assert!(findings[0].message.contains("cycle"), "{findings:?}");
    // Both files declare `health`/`series` Mutex fields, so the finding
    // must disclose that name-based lock identity may be a collision.
    assert!(
        findings[0].message.contains("naming collision"),
        "{findings:?}"
    );
}

#[test]
fn lock_order_collision_note_names_multi_declared_locks() {
    // Two structs in different files share a Mutex field name; nesting
    // their acquisitions looks like a reentrant self-deadlock to the
    // name-based graph. The finding must say the identity is by name,
    // list the declaration files, and point at the rename/allow fix.
    let a = "struct D { state: Mutex<u64> }\n\
             impl D {\n\
                 fn both(&self, other: &E) {\n\
                     let g = lock(&self.state);\n\
                     let h = lock(&other.state);\n\
                     drop(h);\n\
                     drop(g);\n\
                 }\n\
             }\n";
    let b = "struct E { state: Mutex<u64> }\n";
    let sources = vec![
        (PathBuf::from("crates/net/src/a.rs"), a.to_string()),
        (PathBuf::from("crates/net/src/b.rs"), b.to_string()),
    ];
    let findings = check_lock_order(&sources);
    assert_eq!(count(&findings, Rule::LockOrder), 1, "{findings:?}");
    let msg = &findings[0].message;
    assert!(msg.contains("re-acquired"), "{findings:?}");
    assert!(msg.contains("naming collision"), "{findings:?}");
    assert!(msg.contains("a.rs") && msg.contains("b.rs"), "{findings:?}");
    assert!(msg.contains("lint:allow(lock-order)"), "{findings:?}");
}

#[test]
fn atomic_order_fixture_flags_relaxed_flags_and_bare_seqcst() {
    let src = include_str!("fixtures/atomic_order_bad.rs");
    let findings = lint("crates/net/src/fixture.rs", src);
    assert_eq!(count(&findings, Rule::AtomicOrder), 3, "{findings:?}");
    assert_eq!(findings.len(), 3, "{findings:?}");
    lines_contain(&findings, src, Rule::AtomicOrder, "Ordering::");
}

#[test]
fn atomic_order_clean_fixture_produces_nothing() {
    let src = include_str!("fixtures/atomic_order_good.rs");
    let findings = lint("crates/net/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn guard_await_fixture_flags_await_and_move_escape() {
    let src = include_str!("fixtures/guard_await_bad.rs");
    let findings = lint("crates/net/src/fixture.rs", src);
    assert_eq!(count(&findings, Rule::GuardAwait), 2, "{findings:?}");
    assert_eq!(findings.len(), 2, "{findings:?}");
}

#[test]
fn guard_await_clean_fixture_produces_nothing() {
    let src = include_str!("fixtures/guard_await_good.rs");
    let findings = lint("crates/net/src/fixture.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn unsafe_fixture_requires_justification_and_forbid() {
    let src = include_str!("fixtures/unsafe_bad.rs");
    // As a non-root file: only the bare unsafe block is flagged; the
    // justified one passes.
    let findings = lint("crates/net/src/fixture.rs", src);
    assert_eq!(count(&findings, Rule::UnsafeCode), 1, "{findings:?}");
    // As a crate root: the missing forbid attribute is a second finding.
    let as_root = lint("crates/net/src/lib.rs", src);
    assert_eq!(count(&as_root, Rule::UnsafeCode), 2, "{as_root:?}");
}

#[test]
fn unsafe_clean_fixture_produces_nothing() {
    let src = include_str!("fixtures/unsafe_good.rs");
    let findings = lint("crates/net/src/lib.rs", src);
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn the_real_workspace_is_clean() {
    // The acceptance bar for this tooling: zero findings on the tree it
    // ships in. CARGO_MANIFEST_DIR is crates/lint, two levels down.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf();
    let findings = coopcache_lint::lint_workspace(&root).expect("scan succeeds");
    assert!(findings.is_empty(), "workspace regressions: {findings:#?}");
}
