//! Cross-client sharing analysis.
//!
//! Cooperative caching only pays when clients of *different* proxies
//! request the same documents (Wolman et al., SOSP '99 — the paper's
//! reference [15]). This module splits every re-reference into
//! *same-client* (served by any private cache) vs *cross-client-first*
//! (only a shared or cooperative cache can catch it).

use coopcache_types::{ClientId, DocId, Request};
use std::collections::HashMap;

/// How a request stream decomposes by who touched each document before.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SharingProfile {
    /// First-ever references (cold).
    pub cold: u64,
    /// Re-references by a client that saw the document before.
    pub same_client: u64,
    /// First touch by this client of a document some *other* client saw
    /// first — the cooperative-caching opportunity.
    pub cross_client: u64,
}

impl SharingProfile {
    /// Computes the decomposition of a request stream.
    #[must_use]
    pub fn compute<'a>(stream: impl IntoIterator<Item = &'a Request>) -> Self {
        let mut seen_by: HashMap<DocId, Vec<ClientId>> = HashMap::new();
        let mut profile = Self::default();
        for r in stream {
            let clients = seen_by.entry(r.doc).or_default();
            if clients.is_empty() {
                profile.cold += 1;
            } else if clients.contains(&r.client) {
                profile.same_client += 1;
            } else {
                profile.cross_client += 1;
            }
            if !clients.contains(&r.client) {
                clients.push(r.client);
            }
        }
        profile
    }

    /// Total requests analysed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.cold + self.same_client + self.cross_client
    }

    /// Fraction of re-references that cross client boundaries — the share
    /// of cache-able traffic only cooperation can serve.
    #[must_use]
    pub fn cross_client_share(&self) -> f64 {
        let rereferences = self.same_client + self.cross_client;
        if rereferences == 0 {
            0.0
        } else {
            self.cross_client as f64 / rereferences as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coopcache_types::{ByteSize, Timestamp};

    fn req(client: u32, doc: u64) -> Request {
        Request::new(
            Timestamp::ZERO,
            ClientId::new(client),
            DocId::new(doc),
            ByteSize::from_kb(1),
        )
    }

    #[test]
    fn decomposition() {
        let stream = [
            req(0, 1), // cold
            req(0, 1), // same client
            req(1, 1), // cross client (first touch by client 1)
            req(1, 1), // same client (client 1 has seen it now)
            req(2, 2), // cold
        ];
        let p = SharingProfile::compute(stream.iter());
        assert_eq!(p.cold, 2);
        assert_eq!(p.same_client, 2);
        assert_eq!(p.cross_client, 1);
        assert_eq!(p.total(), 5);
        assert!((p.cross_client_share() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream() {
        let p = SharingProfile::compute(std::iter::empty());
        assert_eq!(p.total(), 0);
        assert_eq!(p.cross_client_share(), 0.0);
    }

    #[test]
    fn all_private_traffic_has_zero_cross_share() {
        let stream = [req(0, 1), req(0, 1), req(1, 2), req(1, 2)];
        let p = SharingProfile::compute(stream.iter());
        assert_eq!(p.cross_client, 0);
        assert_eq!(p.cross_client_share(), 0.0);
    }
}
