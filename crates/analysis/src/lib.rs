#![forbid(unsafe_code)]
//! Workload analytics for cooperative-caching research.
//!
//! Tools for characterizing a trace before simulating it, and an offline
//! oracle for judging how close a scheme gets to optimal:
//!
//! * [`ReuseProfile`] — LRU stack distances (Olken's Fenwick-tree
//!   algorithm) and the exact single-LRU hit-rate curve they induce;
//! * [`PopularityProfile`] — rank/frequency statistics, one-timer share,
//!   and a Zipf-α fit to compare synthetic traces against the α ≈ 0.7–1.1
//!   reported for real proxy logs;
//! * [`SharingProfile`] — same-client vs cross-client re-references, the
//!   decomposition that bounds what cooperation can possibly win
//!   (Wolman et al.);
//! * [`belady_min`] — Belady's MIN over a shared cache of the group's
//!   aggregate size: the offline upper bound the benches report against.
//!
//! # Example
//!
//! ```
//! use coopcache_analysis::{belady_min, PopularityProfile, ReuseProfile, SharingProfile};
//! use coopcache_trace::{generate, TraceProfile};
//! use coopcache_types::ByteSize;
//!
//! let trace = generate(&TraceProfile::small()).unwrap();
//! let docs = trace.iter().map(|r| r.doc);
//! let reuse = ReuseProfile::compute(docs.clone());
//! let pop = PopularityProfile::compute(docs);
//! let sharing = SharingProfile::compute(trace.iter());
//! let sized: Vec<_> = trace.iter().map(|r| (r.doc, r.size)).collect();
//! let bound = belady_min(&sized, ByteSize::from_mb(1));
//!
//! println!("LRU@100 docs: {:.1}%   alpha: {:.2}   cross-client: {:.1}%   MIN@1MB: {:.1}%",
//!          100.0 * reuse.lru_hit_rate(100),
//!          pop.zipf_alpha_fit().unwrap_or(f64::NAN),
//!          100.0 * sharing.cross_client_share(),
//!          100.0 * bound.hit_rate());
//! ```

mod belady;
mod popularity;
mod reuse;
mod sharing;

pub use belady::{belady_min, BeladyReport};
pub use popularity::PopularityProfile;
pub use reuse::ReuseProfile;
pub use sharing::SharingProfile;
