//! Popularity analysis: rank/frequency statistics and Zipf fitting.

use coopcache_types::DocId;
use std::collections::HashMap;

/// Rank/frequency statistics of a document-reference stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PopularityProfile {
    /// Reference counts in descending order (`counts[0]` = hottest doc).
    counts: Vec<u64>,
    /// Total references.
    pub total_references: u64,
}

impl PopularityProfile {
    /// Computes the profile of a reference stream.
    #[must_use]
    pub fn compute(stream: impl IntoIterator<Item = DocId>) -> Self {
        let mut freq: HashMap<DocId, u64> = HashMap::new();
        let mut total = 0u64;
        for doc in stream {
            *freq.entry(doc).or_default() += 1;
            total += 1;
        }
        let mut counts: Vec<u64> = freq.into_values().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        Self {
            counts,
            total_references: total,
        }
    }

    /// Number of distinct documents.
    #[must_use]
    pub fn unique_docs(&self) -> usize {
        self.counts.len()
    }

    /// Reference counts in descending rank order.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Share of all references going to the `k` hottest documents.
    #[must_use]
    pub fn top_share(&self, k: usize) -> f64 {
        if self.total_references == 0 {
            return 0.0;
        }
        let top: u64 = self.counts.iter().take(k).sum();
        top as f64 / self.total_references as f64
    }

    /// Fraction of documents referenced exactly once ("one-timers" — the
    /// classic uncacheable tail of web workloads).
    #[must_use]
    pub fn one_timer_fraction(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let ones = self.counts.iter().filter(|&&c| c == 1).count();
        ones as f64 / self.counts.len() as f64
    }

    /// Least-squares estimate of the Zipf exponent α from the
    /// log(rank)–log(frequency) regression over documents referenced more
    /// than once, or `None` when fewer than two points exist.
    ///
    /// This is the standard back-of-envelope fit used in the web-caching
    /// literature (not an MLE); its purpose is comparing synthetic traces
    /// against the α ≈ 0.7–1.1 range reported for real proxy logs.
    #[must_use]
    pub fn zipf_alpha_fit(&self) -> Option<f64> {
        let points: Vec<(f64, f64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 1)
            .map(|(i, &c)| (((i + 1) as f64).ln(), (c as f64).ln()))
            .collect();
        if points.len() < 2 {
            return None;
        }
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        let slope = (n * sxy - sx * sy) / denom;
        Some(-slope)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(ids: &[u64]) -> Vec<DocId> {
        ids.iter().copied().map(DocId::new).collect()
    }

    #[test]
    fn counts_and_shares() {
        let p = PopularityProfile::compute(docs(&[1, 1, 1, 2, 2, 3]));
        assert_eq!(p.unique_docs(), 3);
        assert_eq!(p.counts(), &[3, 2, 1]);
        assert!((p.top_share(1) - 0.5).abs() < 1e-12);
        assert!((p.top_share(2) - 5.0 / 6.0).abs() < 1e-12);
        assert_eq!(p.top_share(100), 1.0);
        assert!((p.one_timer_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_fit_recovers_the_exponent() {
        use coopcache_trace::{Distribution, Rng, Zipf};
        for alpha in [0.7, 1.0] {
            let z = Zipf::new(2_000, alpha).unwrap();
            let mut rng = Rng::seed_from(42);
            let stream: Vec<DocId> = (0..300_000)
                .map(|_| DocId::new(z.sample(&mut rng)))
                .collect();
            let p = PopularityProfile::compute(stream);
            let fit = p.zipf_alpha_fit().expect("enough points");
            assert!((fit - alpha).abs() < 0.15, "alpha {alpha}: fitted {fit}");
        }
    }

    #[test]
    fn degenerate_inputs() {
        let empty = PopularityProfile::compute(Vec::<DocId>::new());
        assert_eq!(empty.unique_docs(), 0);
        assert_eq!(empty.top_share(3), 0.0);
        assert_eq!(empty.one_timer_fraction(), 0.0);
        assert_eq!(empty.zipf_alpha_fit(), None);
        // All one-timers: no regression points.
        let ones = PopularityProfile::compute(docs(&[1, 2, 3]));
        assert_eq!(ones.zipf_alpha_fit(), None);
        assert_eq!(ones.one_timer_fraction(), 1.0);
    }
}
