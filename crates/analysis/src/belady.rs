//! The Belady-MIN offline replacement bound.
//!
//! MIN evicts the document whose next use is furthest in the future; for
//! unit-size documents it is the provably optimal replacement policy, so
//! its hit rate on a *single shared cache holding the group's aggregate
//! capacity* upper-bounds what any placement + replacement combination in
//! a cooperative group of the same total size could achieve. The benches
//! report how much of the ad-hoc→MIN gap the EA scheme closes.

use coopcache_types::{ByteSize, DocId};
use std::collections::{BTreeSet, HashMap};

/// Result of an offline MIN pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BeladyReport {
    /// References served from the cache.
    pub hits: u64,
    /// References that missed.
    pub misses: u64,
    /// Bytes served from the cache.
    pub bytes_hit: ByteSize,
    /// Total bytes requested.
    pub bytes_requested: ByteSize,
}

impl BeladyReport {
    /// Document hit rate.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Byte hit rate.
    #[must_use]
    pub fn byte_hit_rate(&self) -> f64 {
        if self.bytes_requested.is_zero() {
            0.0
        } else {
            self.bytes_hit.as_bytes() as f64 / self.bytes_requested.as_bytes() as f64
        }
    }
}

/// Runs Belady's MIN over a `(doc, size)` reference stream with a byte
/// capacity.
///
/// For variable-size documents the furthest-next-use rule is a greedy
/// heuristic rather than provably optimal, but it remains the standard
/// offline yardstick. Documents wider than the whole capacity are served
/// without being cached.
///
/// # Example
///
/// ```
/// use coopcache_analysis::belady_min;
/// use coopcache_types::{ByteSize, DocId};
///
/// let unit = ByteSize::from_kb(1);
/// let stream: Vec<(DocId, ByteSize)> =
///     [1u64, 2, 3, 1, 2, 3].iter().map(|&d| (DocId::new(d), unit)).collect();
/// let report = belady_min(&stream, ByteSize::from_kb(3));
/// assert_eq!(report.hits, 3); // everything fits: 3 compulsory misses only
/// ```
#[must_use]
pub fn belady_min(stream: &[(DocId, ByteSize)], capacity: ByteSize) -> BeladyReport {
    let n = stream.len();
    // next_use[i] = position of the next reference to stream[i].0, or n.
    let mut next_use = vec![n; n];
    let mut last_seen: HashMap<DocId, usize> = HashMap::new();
    for (i, &(doc, _)) in stream.iter().enumerate().rev() {
        if let Some(&later) = last_seen.get(&doc) {
            next_use[i] = later;
        }
        last_seen.insert(doc, i);
    }

    // Cache state: docs keyed by their *next use* position so the
    // furthest-next-use victim is the max element.
    let mut by_next_use: BTreeSet<(usize, DocId)> = BTreeSet::new();
    let mut resident: HashMap<DocId, (usize, ByteSize)> = HashMap::new();
    let mut used = ByteSize::ZERO;
    let mut report = BeladyReport::default();

    for (i, &(doc, size)) in stream.iter().enumerate() {
        report.bytes_requested += size;
        if let Some(&(old_next, _)) = resident.get(&doc) {
            // Hit: re-key to the new next-use position.
            report.hits += 1;
            report.bytes_hit += size;
            by_next_use.remove(&(old_next, doc));
            by_next_use.insert((next_use[i], doc));
            resident.insert(doc, (next_use[i], size));
            continue;
        }
        report.misses += 1;
        if size > capacity {
            continue; // served, never cached
        }
        if next_use[i] == n {
            // Never used again: caching it can only displace useful bytes.
            continue;
        }
        while used + size > capacity {
            let &(victim_next, victim) = by_next_use.iter().next_back().expect("cache non-empty");
            // Inserting a doc used sooner than the victim is the MIN rule;
            // if even our next use is later than every resident's, skip.
            if victim_next <= next_use[i] {
                break;
            }
            by_next_use.remove(&(victim_next, victim));
            let (_, victim_size) = resident.remove(&victim).expect("resident");
            used -= victim_size;
        }
        if used + size <= capacity {
            by_next_use.insert((next_use[i], doc));
            resident.insert(doc, (next_use[i], size));
            used += size;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_stream(ids: &[u64]) -> Vec<(DocId, ByteSize)> {
        ids.iter()
            .map(|&d| (DocId::new(d), ByteSize::from_kb(1)))
            .collect()
    }

    #[test]
    fn classic_belady_example() {
        // Reference string 1..5 with cache of 3 unit docs — a staple
        // textbook example where MIN beats LRU.
        let stream = unit_stream(&[1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5]);
        let report = belady_min(&stream, ByteSize::from_kb(3));
        // MIN achieves 5 hits on this string with 3 frames (7 faults).
        assert_eq!(report.misses, 7, "hits {}", report.hits);
        assert_eq!(report.hits, 5);
    }

    #[test]
    fn everything_fits_leaves_only_compulsory_misses() {
        let stream = unit_stream(&[1, 2, 3, 1, 2, 3, 1, 2, 3]);
        let report = belady_min(&stream, ByteSize::from_kb(10));
        assert_eq!(report.misses, 3);
        assert_eq!(report.hits, 6);
        assert!((report.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn min_dominates_lru_on_random_streams() {
        use crate::reuse::ReuseProfile;
        let mut stream = Vec::new();
        let mut x = 99u64;
        for _ in 0..3_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            stream.push(DocId::new((x >> 33) % 64));
        }
        let sized: Vec<(DocId, ByteSize)> =
            stream.iter().map(|&d| (d, ByteSize::from_kb(1))).collect();
        let profile = ReuseProfile::compute(stream);
        for slots in [4usize, 16, 32] {
            let min = belady_min(&sized, ByteSize::from_kb(slots as u64));
            let lru = profile.lru_hit_rate(slots);
            assert!(
                min.hit_rate() >= lru - 1e-12,
                "slots {slots}: MIN {} < LRU {lru}",
                min.hit_rate()
            );
        }
    }

    #[test]
    fn oversized_documents_are_never_cached() {
        let stream = vec![
            (DocId::new(1), ByteSize::from_kb(100)),
            (DocId::new(1), ByteSize::from_kb(100)),
        ];
        let report = belady_min(&stream, ByteSize::from_kb(10));
        assert_eq!(report.hits, 0);
        assert_eq!(report.misses, 2);
    }

    #[test]
    fn never_reused_documents_do_not_pollute() {
        // One hot doc re-referenced among one-shot documents: MIN keeps
        // the hot doc resident throughout.
        let mut ids = Vec::new();
        for i in 0..50u64 {
            ids.push(0);
            ids.push(1_000 + i);
        }
        let stream = unit_stream(&ids);
        let report = belady_min(&stream, ByteSize::from_kb(1));
        assert_eq!(report.hits, 49, "hot doc must always hit");
    }

    #[test]
    fn byte_hit_rate_weighs_sizes() {
        let stream = vec![
            (DocId::new(1), ByteSize::from_kb(9)),
            (DocId::new(1), ByteSize::from_kb(9)),
            (DocId::new(2), ByteSize::from_kb(1)),
        ];
        let report = belady_min(&stream, ByteSize::from_kb(9));
        assert_eq!(report.hits, 1);
        assert!((report.byte_hit_rate() - 9.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stream_reports_zero() {
        let report = belady_min(&[], ByteSize::from_kb(1));
        assert_eq!(report.hit_rate(), 0.0);
        assert_eq!(report.byte_hit_rate(), 0.0);
    }
}
