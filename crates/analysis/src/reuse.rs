//! LRU stack-distance (reuse-distance) analysis.
//!
//! The stack distance of a reference is the number of *distinct*
//! documents touched since the previous reference to the same document.
//! Its distribution fully determines the hit-rate-vs-size curve of a
//! single LRU cache (Mattson et al.), which makes it the standard lens
//! for judging whether a synthetic trace has realistic temporal locality.
//!
//! Computed in `O(n log n)` with a Fenwick (binary-indexed) tree over
//! reference positions — Olken's classic algorithm.

use coopcache_types::DocId;
use std::collections::HashMap;

/// A Fenwick tree over reference positions: marks live positions and
/// counts how many fall in a suffix.
#[derive(Debug)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Self {
        Self {
            tree: vec![0; n + 1],
        }
    }

    /// Adds `delta` at 1-based index `i`.
    fn add(&mut self, mut i: usize, delta: i32) {
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of the prefix `[1, i]`.
    fn prefix(&self, mut i: usize) -> u32 {
        let mut sum = 0;
        while i > 0 {
            sum += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        sum
    }
}

/// The outcome of a stack-distance pass over a reference stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReuseProfile {
    /// `histogram[d]` = number of references at stack distance `d`
    /// (0 = immediate re-reference with nothing in between).
    histogram: Vec<u64>,
    /// References to never-before-seen documents (infinite distance).
    pub cold_references: u64,
    /// Total references analysed.
    pub total_references: u64,
}

impl ReuseProfile {
    /// Computes the profile of a document-reference stream.
    #[must_use]
    pub fn compute(stream: impl IntoIterator<Item = DocId>) -> Self {
        let refs: Vec<DocId> = stream.into_iter().collect();
        let n = refs.len();
        let mut fenwick = Fenwick::new(n);
        let mut last_pos: HashMap<DocId, usize> = HashMap::new();
        let mut histogram: Vec<u64> = Vec::new();
        let mut cold = 0u64;
        for (pos, &doc) in refs.iter().enumerate() {
            match last_pos.get(&doc) {
                None => cold += 1,
                Some(&prev) => {
                    // Distinct docs referenced strictly between prev and pos:
                    // live markers in (prev+1 ..= pos) minus none (the doc's
                    // own marker at prev+1 was cleared below before insert).
                    let distance = (fenwick.prefix(pos) - fenwick.prefix(prev + 1)) as usize;
                    if histogram.len() <= distance {
                        histogram.resize(distance + 1, 0);
                    }
                    histogram[distance] += 1;
                    fenwick.add(prev + 1, -1);
                }
            }
            fenwick.add(pos + 1, 1);
            last_pos.insert(doc, pos);
        }
        Self {
            histogram,
            cold_references: cold,
            total_references: n as u64,
        }
    }

    /// The raw histogram (`[d] -> count`).
    #[must_use]
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Predicted hit rate of a single LRU cache holding `slots` whole
    /// documents: the fraction of references with stack distance
    /// `< slots` (Mattson's inclusion property).
    #[must_use]
    pub fn lru_hit_rate(&self, slots: usize) -> f64 {
        if self.total_references == 0 {
            return 0.0;
        }
        let hits: u64 = self.histogram.iter().take(slots).sum();
        hits as f64 / self.total_references as f64
    }

    /// Mean finite stack distance, or `None` if no re-references exist.
    #[must_use]
    pub fn mean_distance(&self) -> Option<f64> {
        let count: u64 = self.histogram.iter().sum();
        if count == 0 {
            return None;
        }
        let weighted: u64 = self
            .histogram
            .iter()
            .enumerate()
            .map(|(d, &c)| d as u64 * c)
            .sum();
        Some(weighted as f64 / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn docs(ids: &[u64]) -> Vec<DocId> {
        ids.iter().copied().map(DocId::new).collect()
    }

    #[test]
    fn textbook_example() {
        // Stream: a b c a — the re-reference to `a` skips over {b, c}.
        let p = ReuseProfile::compute(docs(&[1, 2, 3, 1]));
        assert_eq!(p.cold_references, 3);
        assert_eq!(p.total_references, 4);
        assert_eq!(p.histogram(), &[0, 0, 1]);
    }

    #[test]
    fn immediate_rereference_is_distance_zero() {
        let p = ReuseProfile::compute(docs(&[7, 7, 7]));
        assert_eq!(p.cold_references, 1);
        assert_eq!(p.histogram(), &[2]);
        assert_eq!(p.mean_distance(), Some(0.0));
    }

    #[test]
    fn distance_counts_distinct_not_total() {
        // a b b b a: between the two a's only ONE distinct doc appears.
        let p = ReuseProfile::compute(docs(&[1, 2, 2, 2, 1]));
        // b->b twice at distance 0; a->a once at distance 1.
        assert_eq!(p.histogram(), &[2, 1]);
    }

    #[test]
    fn lru_curve_is_monotone_and_correct() {
        // Cyclic stream over 3 docs: every re-reference at distance 2.
        let p = ReuseProfile::compute(docs(&[1, 2, 3, 1, 2, 3, 1, 2, 3]));
        assert_eq!(p.lru_hit_rate(1), 0.0);
        assert_eq!(p.lru_hit_rate(2), 0.0);
        // 6 of 9 references hit with >= 3 slots.
        assert!((p.lru_hit_rate(3) - 6.0 / 9.0).abs() < 1e-12);
        assert_eq!(p.lru_hit_rate(3), p.lru_hit_rate(100));
        // Monotone in slots.
        for s in 1..5 {
            assert!(p.lru_hit_rate(s + 1) >= p.lru_hit_rate(s));
        }
    }

    #[test]
    fn empty_stream() {
        let p = ReuseProfile::compute(Vec::<DocId>::new());
        assert_eq!(p.total_references, 0);
        assert_eq!(p.lru_hit_rate(10), 0.0);
        assert_eq!(p.mean_distance(), None);
    }

    #[test]
    fn predicted_curve_matches_direct_lru_simulation() {
        // Cross-check Olken's algorithm against a brute-force LRU stack
        // on a pseudo-random stream.
        let mut stream = Vec::new();
        let mut x = 7u64;
        for _ in 0..2_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            stream.push(DocId::new((x >> 33) % 50));
        }
        let p = ReuseProfile::compute(stream.clone());
        for slots in [1usize, 4, 16, 50] {
            // Brute-force LRU of unit-size docs.
            let mut stack: Vec<DocId> = Vec::new();
            let mut hits = 0u64;
            for &doc in &stream {
                if let Some(pos) = stack.iter().position(|&d| d == doc) {
                    stack.remove(pos);
                    stack.insert(0, doc);
                    hits += 1;
                } else {
                    stack.insert(0, doc);
                    if stack.len() > slots {
                        stack.pop();
                    }
                }
            }
            let direct = hits as f64 / stream.len() as f64;
            let predicted = p.lru_hit_rate(slots);
            assert!(
                (direct - predicted).abs() < 1e-12,
                "slots {slots}: direct {direct} vs predicted {predicted}"
            );
        }
    }
}
