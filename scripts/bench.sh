#!/usr/bin/env bash
# Reproduce the paper benchmarks with fixed seeds and snapshot the
# result tables into BENCH_9.json.
#
# Runs (from the repo root):
#   cargo run --release -p coopcache-bench --bin fig1_hit_rates -- --json
#   cargo run --release -p coopcache-bench --bin des_latency -- --json
#   cargo run --release -p coopcache-bench --bin bench_core -- --json
#   cargo run --release -p coopcache-cli --bin coopcache -- bench-daemon --events both --json ...
#
# then merges the results/ JSON files into a single document:
#
#   {"bench":"BENCH_9","experiments":[<fig1_hit_rates>,<des_latency>,<bench_core>,<bench_daemon>]}
#
# Each experiment keeps the standard results/ shape
# ({"id","title","trace","headers":[...],"rows":[[...]]}).  The seeds
# live in the benchmark binaries, so the paper-figure tables are
# byte-identical run to run; no timestamps are recorded for exactly
# that reason.  The bench_core and bench_daemon experiments report
# measured wall-clock throughput (of the sharded arena store and the
# live pooled daemon transport respectively), so their numbers vary
# run to run — bench_diff treats new experiments as additions, and the
# paper-figure cells must not drift.
#
# The bench_daemon experiment now runs twice — events off, then with
# the deterministic head sampler always on — so the snapshot records
# the sampled telemetry overhead (the acceptance bar is <= 5% req/s).
#
# When the previous snapshot (BENCH_8.json) is present, the run closes
# with an advisory scripts/bench_diff.sh report of any drift.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p coopcache-bench --bin fig1_hit_rates -- --json
cargo run --release -q -p coopcache-bench --bin des_latency -- --json
cargo run --release -q -p coopcache-bench --bin bench_core -- --json
# Best-of-7 per mode, modes interleaved across repeats: loopback
# throughput is noisy run to run (single-core CI boxes especially), and
# the off/sampled overhead comparison needs both sides at their
# sustained rate rather than whichever run the scheduler disturbed.
cargo run --release -q -p coopcache-cli --bin coopcache -- bench-daemon --events both --repeat 7 --json results/bench_daemon.json

for f in results/fig1_hit_rates.json results/des_latency.json results/bench_core.json results/bench_daemon.json; do
    [ -s "$f" ] || { echo "bench.sh: missing $f" >&2; exit 1; }
done

{
    printf '{"bench":"BENCH_9","experiments":['
    printf '%s' "$(cat results/fig1_hit_rates.json)"
    printf ','
    printf '%s' "$(cat results/des_latency.json)"
    printf ','
    printf '%s' "$(cat results/bench_core.json)"
    printf ','
    printf '%s' "$(cat results/bench_daemon.json)"
    printf ']}\n'
} > BENCH_9.json

echo "wrote BENCH_9.json"

if [ -s BENCH_8.json ]; then
    scripts/bench_diff.sh BENCH_8.json BENCH_9.json
fi

if [ -s BENCH_5.json ]; then
    scripts/bench_trend.sh
fi
