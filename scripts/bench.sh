#!/usr/bin/env bash
# Reproduce the paper benchmarks with fixed seeds and snapshot the
# result tables into BENCH_7.json.
#
# Runs (from the repo root):
#   cargo run --release -p coopcache-bench --bin fig1_hit_rates -- --json
#   cargo run --release -p coopcache-bench --bin des_latency -- --json
#   cargo run --release -p coopcache-bench --bin bench_core -- --json
#
# then merges the results/ JSON files into a single document:
#
#   {"bench":"BENCH_7","experiments":[<fig1_hit_rates>,<des_latency>,<bench_core>]}
#
# Each experiment keeps the standard results/ shape
# ({"id","title","trace","headers":[...],"rows":[[...]]}).  The seeds
# live in the benchmark binaries, so the paper-figure tables are
# byte-identical run to run; no timestamps are recorded for exactly
# that reason.  The bench_core experiment reports measured wall-clock
# throughput of the sharded arena store, so its numbers vary run to
# run — bench_diff treats new experiments as additions, and the
# paper-figure cells must not drift.
#
# When the previous snapshot (BENCH_6.json) is present, the run closes
# with an advisory scripts/bench_diff.sh report of any drift.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p coopcache-bench --bin fig1_hit_rates -- --json
cargo run --release -q -p coopcache-bench --bin des_latency -- --json
cargo run --release -q -p coopcache-bench --bin bench_core -- --json

for f in results/fig1_hit_rates.json results/des_latency.json results/bench_core.json; do
    [ -s "$f" ] || { echo "bench.sh: missing $f" >&2; exit 1; }
done

{
    printf '{"bench":"BENCH_7","experiments":['
    printf '%s' "$(cat results/fig1_hit_rates.json)"
    printf ','
    printf '%s' "$(cat results/des_latency.json)"
    printf ','
    printf '%s' "$(cat results/bench_core.json)"
    printf ']}\n'
} > BENCH_7.json

echo "wrote BENCH_7.json"

if [ -s BENCH_6.json ]; then
    scripts/bench_diff.sh BENCH_6.json BENCH_7.json
fi
