#!/usr/bin/env bash
# Reproduce the paper benchmarks with fixed seeds and snapshot the
# result tables into BENCH_6.json.
#
# Runs (from the repo root):
#   cargo run --release -p coopcache-bench --bin fig1_hit_rates -- --json
#   cargo run --release -p coopcache-bench --bin des_latency -- --json
#
# then merges results/fig1_hit_rates.json and results/des_latency.json
# into a single document:
#
#   {"bench":"BENCH_6","experiments":[<fig1_hit_rates>,<des_latency>]}
#
# Each experiment keeps the standard results/ shape
# ({"id","title","trace","headers":[...],"rows":[[...]]}).  The seeds
# live in the benchmark binaries, so the output is byte-identical run
# to run; no timestamps are recorded for exactly that reason.
#
# When the previous snapshot (BENCH_5.json) is present, the run closes
# with an advisory scripts/bench_diff.sh report of any drift.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p coopcache-bench --bin fig1_hit_rates -- --json
cargo run --release -q -p coopcache-bench --bin des_latency -- --json

for f in results/fig1_hit_rates.json results/des_latency.json; do
    [ -s "$f" ] || { echo "bench.sh: missing $f" >&2; exit 1; }
done

{
    printf '{"bench":"BENCH_6","experiments":['
    printf '%s' "$(cat results/fig1_hit_rates.json)"
    printf ','
    printf '%s' "$(cat results/des_latency.json)"
    printf ']}\n'
} > BENCH_6.json

echo "wrote BENCH_6.json"

if [ -s BENCH_5.json ]; then
    scripts/bench_diff.sh BENCH_5.json BENCH_6.json
fi
