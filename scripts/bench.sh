#!/usr/bin/env bash
# Reproduce the paper benchmarks with fixed seeds and snapshot the
# result tables into BENCH_8.json.
#
# Runs (from the repo root):
#   cargo run --release -p coopcache-bench --bin fig1_hit_rates -- --json
#   cargo run --release -p coopcache-bench --bin des_latency -- --json
#   cargo run --release -p coopcache-bench --bin bench_core -- --json
#   cargo run --release -p coopcache-cli --bin coopcache -- bench-daemon --json ...
#
# then merges the results/ JSON files into a single document:
#
#   {"bench":"BENCH_8","experiments":[<fig1_hit_rates>,<des_latency>,<bench_core>,<bench_daemon>]}
#
# Each experiment keeps the standard results/ shape
# ({"id","title","trace","headers":[...],"rows":[[...]]}).  The seeds
# live in the benchmark binaries, so the paper-figure tables are
# byte-identical run to run; no timestamps are recorded for exactly
# that reason.  The bench_core and bench_daemon experiments report
# measured wall-clock throughput (of the sharded arena store and the
# live pooled daemon transport respectively), so their numbers vary
# run to run — bench_diff treats new experiments as additions, and the
# paper-figure cells must not drift.
#
# When the previous snapshot (BENCH_7.json) is present, the run closes
# with an advisory scripts/bench_diff.sh report of any drift.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo run --release -q -p coopcache-bench --bin fig1_hit_rates -- --json
cargo run --release -q -p coopcache-bench --bin des_latency -- --json
cargo run --release -q -p coopcache-bench --bin bench_core -- --json
cargo run --release -q -p coopcache-cli --bin coopcache -- bench-daemon --json results/bench_daemon.json

for f in results/fig1_hit_rates.json results/des_latency.json results/bench_core.json results/bench_daemon.json; do
    [ -s "$f" ] || { echo "bench.sh: missing $f" >&2; exit 1; }
done

{
    printf '{"bench":"BENCH_8","experiments":['
    printf '%s' "$(cat results/fig1_hit_rates.json)"
    printf ','
    printf '%s' "$(cat results/des_latency.json)"
    printf ','
    printf '%s' "$(cat results/bench_core.json)"
    printf ','
    printf '%s' "$(cat results/bench_daemon.json)"
    printf ']}\n'
} > BENCH_8.json

echo "wrote BENCH_8.json"

if [ -s BENCH_7.json ]; then
    scripts/bench_diff.sh BENCH_7.json BENCH_8.json
fi
