#!/usr/bin/env bash
# Collate every BENCH_*.json snapshot in the repo root into per-cell
# trend lines (a thin wrapper around `coopcache bench-trend`). Advisory
# by design, like bench_diff.sh: the trend is printed, the exit code
# only reflects missing or unreadable snapshots.
# Usage: scripts/bench_trend.sh             all BENCH_*.json, oldest first
#        scripts/bench_trend.sh A.json B.json ...   an explicit sequence
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -gt 0 ]]; then
    files=("$@")
else
    # BENCH_5.json .. BENCH_9.json sort correctly as plain strings while
    # the sequence stays single-digit; revisit at BENCH_10.
    mapfile -t files < <(ls BENCH_*.json 2>/dev/null | sort)
fi

if [[ ${#files[@]} -lt 2 ]]; then
    echo "bench_trend.sh: need at least two BENCH_*.json snapshots" >&2
    exit 2
fi

joined=$(IFS=,; echo "${files[*]}")
cargo run -q -p coopcache-cli -- bench-trend --files "$joined"
