#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, the workspace conformance linter, and
# the full test suite (including the paranoid invariant audits).
# Usage: scripts/check.sh              run the whole gate
#        scripts/check.sh lint         run only the conformance linter
#        scripts/check.sh concurrency  run only the concurrency rules
set -euo pipefail
cd "$(dirname "$0")/.."

run_lint() {
  echo "== coopcache-lint (workspace conformance)"
  cargo run -q -p coopcache-lint
}

run_concurrency_lint() {
  echo "== coopcache-lint --concurrency (lock/atomic soundness)"
  cargo run -q -p coopcache-lint -- --concurrency
}

if [[ "${1:-}" == "lint" ]]; then
  run_lint
  exit 0
fi

if [[ "${1:-}" == "concurrency" ]]; then
  run_concurrency_lint
  exit 0
fi

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

run_lint

run_concurrency_lint

echo "== cargo test (interleave: bounded model checking)"
cargo test -q -p coopcache-interleave

echo "== cargo test"
cargo test -q --workspace

echo "== cargo test (paranoid invariant audits)"
cargo test -q -p coopcache-core --features paranoid

echo "== cargo test (hot-path profiling feature)"
cargo test -q -p coopcache-core --features profile

echo "== cargo test (chaos: live cluster under injected faults)"
cargo test -q --test chaos

echo "== trace determinism (two same-seed DES runs, byte-identical trees)"
cargo test -q --test determinism des_trace_trees_are_identical_across_runs

echo "== series determinism (DES + replayed series, byte-identical)"
cargo test -q --test determinism des_series_rings_are_identical_across_runs
cargo test -q --test determinism series_replay_is_byte_identical_across_runs

echo "== sampling determinism (sampled stream = reproducible subsequence)"
cargo test -q --test determinism sampled_event_streams_are_deterministic_subsequences
cargo test -q --test proptests sampling_is_a_deterministic_subsequence_for_any_seed_and_rate

echo "== alert determinism (same-seed DES runs fire byte-identical alerts)"
cargo test -q --test determinism des_alert_firings_are_identical_across_runs

echo "== rollup sweep (64-node DES under bounded aggregator memory)"
cargo test -q --test determinism des_rollup_sweep_64_nodes_is_bounded_and_byte_identical

echo "== ThreadSanitizer storm test (advisory; needs nightly + rust-src)"
if cargo +nightly --version >/dev/null 2>&1 &&
  [[ -f "$(rustc +nightly --print sysroot)/lib/rustlib/src/rust/library/Cargo.lock" ]]; then
  RUSTFLAGS="-Z sanitizer=thread" cargo +nightly test -q --test concurrency_storm \
    --target x86_64-unknown-linux-gnu -Z build-std || true
else
  echo "   skipped: no nightly toolchain with rust-src available offline"
fi

echo "== bench-core smoke (O(1) scaling + allocation-free hot path)"
cargo run --release -q -p coopcache-bench --bin bench_core -- --smoke

echo "== bench-daemon smoke (pooled transport + sampled-telemetry overhead)"
cargo run --release -q -p coopcache-cli --bin coopcache -- bench-daemon --smoke true --events both

echo "== bench drift (advisory; compares the last two snapshots)"
if [[ -s BENCH_8.json && -s BENCH_9.json ]]; then
  scripts/bench_diff.sh BENCH_8.json BENCH_9.json || true
else
  echo "   skipped: run scripts/bench.sh to produce BENCH_9.json"
fi

echo "== bench trend (advisory; collates all snapshots)"
scripts/bench_trend.sh || true

echo "All checks passed."
