#!/usr/bin/env bash
# Compare two BENCH_*.json snapshots produced by scripts/bench.sh and
# report per-experiment, per-cell deltas (a thin wrapper around
# `coopcache bench-diff`). Advisory by design: drift is printed, the
# exit code only reflects missing or unreadable snapshots.
# Usage: scripts/bench_diff.sh OLD.json NEW.json
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -ne 2 ]]; then
    echo "usage: scripts/bench_diff.sh OLD.json NEW.json" >&2
    exit 2
fi

cargo run -q -p coopcache-cli -- bench-diff --old "$1" --new "$2"
